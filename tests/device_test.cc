// Process-restart durability over the pluggable device API: transactions
// run against a FileDevice-backed database, the Database object is
// destroyed *without* any shutdown handshake (the moral equivalent of
// kill -9 after a group-commit flush), and a fresh Database constructed
// over the same directory recovers to identical table contents. Plus unit
// coverage for the FileDevice object store, batch-file naming and config
// validation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "device/file_device.h"
#include "device/simulated_ssd.h"
#include "logging/log_store.h"
#include "pacman/database.h"
#include "test_util.h"
#include "workload/bank.h"

namespace pacman {
namespace {

namespace fs = std::filesystem;

class DeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "pacman_device_XXXXXX").string();
    char* created = ::mkdtemp(tmpl.data());
    ASSERT_NE(created, nullptr);
    dir_ = created;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  DatabaseOptions FileDbOptions(logging::LogScheme scheme) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    opts.device = device::DeviceKind::kFile;
    opts.log_dir = dir_;
    opts.commits_per_epoch = 10;
    opts.epochs_per_batch = 2;
    return opts;
  }

  // Runs `n` bank transactions (every 5th tagged ad-hoc, exercising the
  // mixed log of §4.5) and flushes the final epoch so everything
  // committed is durable before the "kill".
  void RunTxns(Database* db, int n, uint64_t seed = 1) {
    Rng rng(seed);
    std::vector<Value> params;
    for (int i = 0; i < n; ++i) {
      ProcId proc = bank_.NextTransaction(&rng, &params);
      ASSERT_TRUE(
          db->ExecuteProcedure(proc, params, /*adhoc=*/i % 5 == 0).ok());
    }
    db->AdvanceEpoch();
  }

  // Schema + procedures only: a restarted process reinstalls the
  // compile-time artifacts; the data comes back from checkpoint + log.
  void InstallSchemaOnly(Database* db) {
    bank_.CreateTables(db->catalog());
    bank_.RegisterProcedures(db->registry());
    db->FinalizeSchema();
  }

  double BalanceSum(Database* db) {
    const Timestamp ts = db->txn_manager()->LastCommitted();
    return testutil::VisibleSum(
               db->catalog()->GetTable(db->catalog()->GetTableId("Current")),
               ts) +
           testutil::VisibleSum(
               db->catalog()->GetTable(db->catalog()->GetTableId("Saving")),
               ts);
  }

  std::string dir_;
  // single_fraction = 0 so every Transfer writes (exact replay counts).
  workload::Bank bank_{workload::BankConfig{
      .num_users = 100, .num_nations = 4, .single_fraction = 0.0}};
};

// --- FileDevice object store -------------------------------------------

TEST_F(DeviceTest, FileDeviceObjectStoreRoundTrip) {
  device::FileDevice dev({.dir = dir_ + "/dev"});
  EXPECT_FALSE(dev.Exists("a"));
  ASSERT_TRUE(dev.WriteFile("a", {1, 2, 3}).ok());
  EXPECT_TRUE(dev.Exists("a"));
  EXPECT_EQ(dev.FileSize("a"), 3u);
  ASSERT_TRUE(dev.AppendFile("a", {4, 5}).ok());
  ASSERT_TRUE(dev.SyncBarrier().ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(dev.ReadFile("a", &bytes).ok());
  EXPECT_EQ(bytes, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  // Overwrite is a full replace (atomic tmp+rename underneath).
  ASSERT_TRUE(dev.WriteFile("a", {9}).ok());
  ASSERT_TRUE(dev.ReadFile("a", &bytes).ok());
  EXPECT_EQ(bytes, std::vector<uint8_t>{9});
  EXPECT_EQ(dev.ReadFile("missing", &bytes).code(), StatusCode::kNotFound);
  EXPECT_EQ(dev.FileSize("missing"), 0u);

  ASSERT_TRUE(dev.WriteFile("log_b", {0}).ok());
  ASSERT_TRUE(dev.WriteFile("log_a", {0}).ok());
  EXPECT_EQ(dev.ListFiles("log_"),
            (std::vector<std::string>{"log_a", "log_b"}));
  EXPECT_GT(dev.total_bytes_written(), 0u);
  EXPECT_GT(dev.total_fsyncs(), 0u);
  dev.RemoveAll();
  EXPECT_TRUE(dev.ListFiles("").empty());
}

TEST_F(DeviceTest, FileDeviceStateSurvivesReopen) {
  {
    device::FileDevice dev({.dir = dir_ + "/dev"});
    ASSERT_TRUE(dev.WriteFile("pepoch.log", {7, 7}).ok());
  }
  device::FileDevice reopened({.dir = dir_ + "/dev"});
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(reopened.ReadFile("pepoch.log", &bytes).ok());
  EXPECT_EQ(bytes, (std::vector<uint8_t>{7, 7}));
}

TEST_F(DeviceTest, FileDeviceCostSurfaceReportsMeasuredWallClock) {
  device::FileDevice dev({.dir = dir_ + "/dev"});
  // Before any samples: the nominal priors answer, and they are finite
  // and positive.
  EXPECT_GT(dev.WriteSeconds(1 << 20), 0.0);
  EXPECT_GT(dev.ReadSeconds(1 << 20), 0.0);
  EXPECT_GE(dev.FsyncSeconds(), 0.0);
  std::vector<uint8_t> payload(1 << 16, 0xab);
  const device::IoResult w = dev.WriteFile("f", payload);
  ASSERT_TRUE(w.ok());
  EXPECT_GE(w.seconds, 0.0);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(dev.ReadFile("f", &bytes).ok());
  // After samples the estimates scale linearly in the byte count.
  EXPECT_GT(dev.WriteSeconds(1 << 20), 0.0);
  EXPECT_NEAR(dev.ReadSeconds(2 << 20) / dev.ReadSeconds(1 << 20), 2.0, 1e-9);
}

// --- Config validation (satellite: named constructor-time errors) -------

using DeviceValidationDeathTest = DeviceTest;

TEST_F(DeviceValidationDeathTest, SsdConfigRejectsNonPositiveBandwidth) {
  device::SsdConfig bad;
  bad.write_mbps = 0.0;
  EXPECT_DEATH(device::SimulatedSsd{bad}, "write_mbps must be positive");
  bad = device::SsdConfig{};
  bad.read_mbps = -1.0;
  EXPECT_DEATH(device::SimulatedSsd{bad}, "read_mbps must be positive");
}

TEST_F(DeviceValidationDeathTest, SsdConfigRejectsNegativeFsyncLatency) {
  device::SsdConfig bad;
  bad.fsync_latency_s = -1e-3;
  EXPECT_DEATH(device::SimulatedSsd{bad},
               "fsync_latency_s must be non-negative");
}

TEST_F(DeviceValidationDeathTest, FileDeviceRejectsBadConfig) {
  EXPECT_DEATH(device::FileDevice{device::FileDeviceConfig{}},
               "dir must name a directory");
  device::FileDeviceConfig bad;
  bad.dir = dir_ + "/dev";
  bad.nominal_write_mbps = 0.0;
  EXPECT_DEATH(device::FileDevice{bad}, "nominal_write_mbps must be positive");
}

TEST_F(DeviceValidationDeathTest, DatabaseRequiresLogDirForFileDevice) {
  DatabaseOptions opts;
  opts.device = device::DeviceKind::kFile;
  EXPECT_DEATH(Database{opts}, "log_dir is required");
}

// --- Batch file naming (satellite: robust on-device naming) -------------

TEST(BatchFileNameTest, PaddedNamesKeepLexicographicEqualNumericOrder) {
  EXPECT_EQ(logging::LogStore::BatchFileName(3, 42),
            "log_03_000000000042.batch");
  // Beyond the historical 8-digit padding, names still sort correctly.
  EXPECT_LT(logging::LogStore::BatchFileName(0, 99999999),
            logging::LogStore::BatchFileName(0, 100000000));
}

TEST(BatchFileNameTest, ParseAcceptsBothPaddingForms) {
  uint32_t logger = 0;
  uint64_t seq = 0;
  ASSERT_TRUE(logging::LogStore::ParseBatchFileName("log_03_000000000042.batch",
                                                    &logger, &seq));
  EXPECT_EQ(logger, 3u);
  EXPECT_EQ(seq, 42u);
  // The 8-digit form written by earlier repo versions parses unchanged.
  ASSERT_TRUE(logging::LogStore::ParseBatchFileName("log_01_00000007.batch",
                                                    &logger, &seq));
  EXPECT_EQ(logger, 1u);
  EXPECT_EQ(seq, 7u);
  EXPECT_FALSE(
      logging::LogStore::ParseBatchFileName("pepoch.log", &logger, &seq));
  EXPECT_FALSE(
      logging::LogStore::ParseBatchFileName("log_xx_1.batch", &logger, &seq));
  EXPECT_FALSE(
      logging::LogStore::ParseBatchFileName("log_1_2.ckpt", &logger, &seq));
}

// --- Process-restart durability (the capstone) ---------------------------

struct RestartCase {
  logging::LogScheme log;
  recovery::Scheme rec;
};

class RestartRecoveryTest
    : public DeviceTest,
      public ::testing::WithParamInterface<RestartCase> {};

TEST_P(RestartRecoveryTest, SurvivesProcessRestart) {
  const RestartCase param = GetParam();
  uint64_t hash_before = 0;
  double sum_before = 0.0;
  {
    auto db = std::make_unique<Database>(FileDbOptions(param.log));
    ASSERT_FALSE(db->opened_existing_state());
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 80);
    hash_before = db->ContentHash();
    sum_before = BalanceSum(db.get());
    // Destroy with no Crash()/Finalize handshake: everything up to the
    // last group-commit flush must already be durable on disk.
  }

  auto db = std::make_unique<Database>(FileDbOptions(param.log));
  EXPECT_TRUE(db->opened_existing_state());
  EXPECT_TRUE(db->crashed());
  InstallSchemaOnly(db.get());
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  FullRecoveryResult r =
      db->Recover(param.rec, ropts, ExecutionBackend::kThreads);
  EXPECT_FALSE(db->crashed());
  EXPECT_GT(r.log.records_replayed, 0u);
  EXPECT_EQ(db->ContentHash(), hash_before);
  EXPECT_DOUBLE_EQ(BalanceSum(db.get()), sum_before);

  // The recovered database accepts new work.
  RunTxns(db.get(), 10, /*seed=*/9);
  EXPECT_NE(db->ContentHash(), hash_before);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RestartRecoveryTest,
    ::testing::Values(
        RestartCase{logging::LogScheme::kPhysical, recovery::Scheme::kPlr},
        RestartCase{logging::LogScheme::kLogical, recovery::Scheme::kLlrP},
        RestartCase{logging::LogScheme::kCommand, recovery::Scheme::kClrP}));

TEST_F(DeviceTest, RestartRecoverContinueAndRestartAgain) {
  // Two generations of restart: recover, commit more work, get killed
  // again, recover again. Exercises batch-sequence resumption (new
  // batches must not overwrite the previous process's) and epoch
  // continuity (the pepoch watermark must not regress below records the
  // first process persisted).
  uint64_t h1 = 0;
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand));
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 60);
    h1 = db->ContentHash();
  }

  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  uint64_t h2 = 0;
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand));
    InstallSchemaOnly(db.get());
    db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
    ASSERT_EQ(db->ContentHash(), h1);
    RunTxns(db.get(), 30, /*seed=*/5);
    h2 = db->ContentHash();
    EXPECT_NE(h2, h1);
  }
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand));
    InstallSchemaOnly(db.get());
    FullRecoveryResult r =
        db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
    EXPECT_EQ(db->ContentHash(), h2);
    EXPECT_GT(r.log.records_replayed, 0u);
  }
}

TEST_F(DeviceTest, TruncateBeyondWatermarkErasesZombieRecords) {
  device::FileDevice dev({.dir = dir_ + "/dev"});
  logging::LogBatch batch;
  batch.logger_id = 0;
  batch.seq = 4;
  for (Epoch e : {Epoch{1}, Epoch{2}, Epoch{7}}) {
    logging::LogRecord rec;
    rec.commit_ts = 10 + e;
    rec.epoch = e;
    rec.proc = kAdhocProcId;
    rec.writes.push_back({0, e, {Value(1.0)}, false});
    batch.records.push_back(std::move(rec));
  }
  const std::string name = logging::LogStore::BatchFileName(0, batch.seq);
  ASSERT_TRUE(dev.WriteFile(name, logging::LogStore::SerializeBatch(
                                      logging::LogScheme::kCommand, batch))
                  .ok());

  ASSERT_TRUE(logging::LogStore::TruncateBeyondWatermark(
                  logging::LogScheme::kCommand, {&dev}, /*pepoch=*/2)
                  .ok());
  // The epoch-7 zombie is gone; the file (and its sequence slot) remain.
  EXPECT_TRUE(dev.Exists(name));
  std::vector<logging::LogBatch> reloaded;
  ASSERT_TRUE(logging::LogStore::LoadAllBatches(logging::LogScheme::kCommand,
                                                {&dev}, &reloaded)
                  .ok());
  ASSERT_EQ(reloaded.size(), 1u);
  ASSERT_EQ(reloaded[0].records.size(), 2u);
  for (const auto& r : reloaded[0].records) EXPECT_LE(r.epoch, 2u);
}

TEST_F(DeviceTest, RestartRecoveryErasesZombiesFromPartialFlush) {
  // Models a kill mid-FlushAll: one logger's batch image reached the disk
  // with records beyond the durable pepoch watermark. The first restart
  // recovery must both exclude them from replay and erase them, so they
  // cannot resurface once the new process's epoch counter (and pepoch)
  // catches up with their stamps.
  uint64_t h1 = 0;
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand));
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 40);
    h1 = db->ContentHash();
    // Plant the zombie: a batch whose record postdates the watermark and
    // would visibly corrupt the Current table if ever replayed.
    logging::LogBatch zombie;
    zombie.logger_id = 0;
    zombie.seq = 9999;
    logging::LogRecord rec;
    rec.commit_ts = 1u << 30;
    rec.epoch = db->epoch_manager()->PersistentEpoch() + 1;
    rec.proc = kAdhocProcId;
    rec.writes.push_back(
        {db->catalog()->GetTableId("Current"), 0, {Value(-1e9)}, false});
    zombie.first_epoch = zombie.last_epoch = rec.epoch;
    zombie.records.push_back(rec);
    ASSERT_TRUE(db->device(0)
                    ->WriteFile(logging::LogStore::BatchFileName(0, zombie.seq),
                                logging::LogStore::SerializeBatch(
                                    logging::LogScheme::kCommand, zombie))
                    .ok());
  }

  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand));
    InstallSchemaOnly(db.get());
    db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
    ASSERT_EQ(db->ContentHash(), h1) << "zombie record replayed";
    // Advance far enough that pepoch passes the zombie's stamp, then die.
    RunTxns(db.get(), 30, /*seed=*/5);
    h1 = db->ContentHash();
  }
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand));
    InstallSchemaOnly(db.get());
    db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
    EXPECT_EQ(db->ContentHash(), h1) << "zombie resurfaced after restart";
  }
}

TEST_F(DeviceTest, ColdStartRefusesForwardWorkBeforeRecovery) {
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand));
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 20);
  }
  auto db = std::make_unique<Database>(
      FileDbOptions(logging::LogScheme::kCommand));
  InstallSchemaOnly(db.get());
  // The durable image is authoritative; executing before Recover() would
  // fork history, so the crashed-state check rejects it.
  EXPECT_DEATH(db->ExecuteProcedure(bank_.transfer_id(),
                                    {Value(int64_t{0}), Value(1.0)}),
               "");
}

TEST_F(DeviceTest, SimulatedDeviceReportsNoExistingState) {
  // The sim backend never persists across construction, so a fresh
  // database over it must not start in the crashed state.
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  EXPECT_FALSE(db.opened_existing_state());
  EXPECT_FALSE(db.crashed());
}

TEST_F(DeviceTest, CustomDeviceFactoryIsHonored) {
  // The factory hook lets embedders plug any backend; here it routes both
  // "ssds" into FileDevices in one shared parent directory.
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  opts.commits_per_epoch = 10;
  std::string dir = dir_;
  opts.device_factory = [dir](uint32_t index) {
    return std::make_unique<device::FileDevice>(device::FileDeviceConfig{
        .dir = dir + "/custom" + std::to_string(index)});
  };
  Database db(opts);
  bank_.Install(&db);
  db.FinalizeSchema();
  db.TakeCheckpoint();
  RunTxns(&db, 20);
  EXPECT_TRUE(fs::exists(dir_ + "/custom0"));
  EXPECT_TRUE(fs::exists(dir_ + "/custom1"));
  EXPECT_GT(db.device(0)->total_bytes_written() +
                db.device(1)->total_bytes_written(),
            0u);
}

}  // namespace
}  // namespace pacman
