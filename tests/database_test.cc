// Tests for the Database facade: lifecycle, epoch auto-advance, flush
// accounting, repeated crash/recovery cycles, scheme/format checks and
// post-recovery transaction ordering.
#include "pacman/database.h"

#include <gtest/gtest.h>

#include "workload/bank.h"

namespace pacman {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> MakeDb(
      logging::LogScheme scheme = logging::LogScheme::kCommand,
      uint32_t commits_per_epoch = 10) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    opts.commits_per_epoch = commits_per_epoch;
    opts.epochs_per_batch = 2;
    auto db = std::make_unique<Database>(opts);
    bank_.CreateTables(db->catalog());
    bank_.RegisterProcedures(db->registry());
    bank_.Load(db->catalog());
    db->FinalizeSchema();
    return db;
  }

  void RunTxns(Database* db, int n, uint64_t seed = 1) {
    Rng rng(seed);
    std::vector<Value> params;
    for (int i = 0; i < n; ++i) {
      ProcId proc = bank_.NextTransaction(&rng, &params);
      ASSERT_TRUE(db->ExecuteProcedure(proc, params).ok());
    }
  }

  workload::Bank bank_{workload::BankConfig{
      .num_users = 200, .num_nations = 8, .single_fraction = 0.0}};
};

TEST_F(DatabaseTest, EpochAutoAdvancesEveryNCommits) {
  auto db = MakeDb(logging::LogScheme::kCommand, /*commits_per_epoch=*/10);
  Epoch e0 = db->epoch_manager()->current();
  RunTxns(db.get(), 35);
  EXPECT_EQ(db->epoch_manager()->current(), e0 + 3);
  EXPECT_EQ(db->commits(), 35u);
}

TEST_F(DatabaseTest, FlushAccountingAccumulates) {
  auto db = MakeDb(logging::LogScheme::kLogical, 10);
  RunTxns(db.get(), 50);
  EXPECT_GT(db->total_flush_seconds(), 0.0);
  EXPECT_GT(db->log_manager()->total_bytes(), 0u);
  EXPECT_GT(db->ssd(0)->total_fsyncs() + db->ssd(1)->total_fsyncs(), 0u);
}

TEST_F(DatabaseTest, GdgBuiltOnFinalize) {
  auto db = MakeDb();
  EXPECT_EQ(db->gdg().NumBlocks(), 4u);  // The paper's Fig. 5c structure.
  EXPECT_EQ(db->ldgs().size(), 2u);
  auto chopping = db->BuildChoppingGdg();
  EXPECT_GE(chopping.NumBlocks(), 1u);
}

TEST_F(DatabaseTest, RepeatedCrashRecoveryCycles) {
  auto db = MakeDb();
  db->TakeCheckpoint();
  RunTxns(db.get(), 100, 3);
  const uint64_t h1 = db->ContentHash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;

  for (int cycle = 0; cycle < 3; ++cycle) {
    db->Crash();
    EXPECT_TRUE(db->crashed());
    db->Recover(recovery::Scheme::kClrP, ropts);
    EXPECT_FALSE(db->crashed());
    EXPECT_EQ(db->ContentHash(), h1) << "cycle " << cycle;
  }

  // New work after the final recovery commits on top.
  RunTxns(db.get(), 20, 4);
  const uint64_t h2 = db->ContentHash();
  EXPECT_NE(h2, h1);
  db->Crash();
  db->Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(db->ContentHash(), h2);
}

TEST_F(DatabaseTest, RecoverySetsTimestampsPastReplayedCommits) {
  auto db = MakeDb();
  db->TakeCheckpoint();
  RunTxns(db.get(), 50);
  const Timestamp last = db->txn_manager()->LastCommitted();
  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 2;
  db->Recover(recovery::Scheme::kClr, ropts);
  EXPECT_EQ(db->txn_manager()->LastCommitted(), last);
  // The next commit gets a fresh, larger timestamp.
  RunTxns(db.get(), 1, 9);
  EXPECT_GT(db->txn_manager()->LastCommitted(), last);
}

TEST_F(DatabaseTest, CheckpointOnlyRecovery) {
  // No transactions after the checkpoint: log recovery replays nothing
  // and the state equals the checkpoint snapshot.
  auto db = MakeDb();
  RunTxns(db.get(), 30);
  db->TakeCheckpoint();
  const uint64_t pre = db->ContentHash();
  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  FullRecoveryResult r = db->Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(r.log.records_replayed, 0u);
  EXPECT_EQ(db->ContentHash(), pre);
}

TEST_F(DatabaseTest, LatestCheckpointWins) {
  auto db = MakeDb();
  db->TakeCheckpoint();
  RunTxns(db.get(), 40, 5);
  db->TakeCheckpoint();
  RunTxns(db.get(), 40, 6);
  const uint64_t pre = db->ContentHash();
  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  FullRecoveryResult r = db->Recover(recovery::Scheme::kClrP, ropts);
  // Only the post-checkpoint suffix is replayed.
  EXPECT_LE(r.log.records_replayed, 40u);
  EXPECT_EQ(db->ContentHash(), pre);
}

TEST_F(DatabaseTest, ProcedureErrorsPropagate) {
  auto db = MakeDb();
  // Unknown procedure ids are a programming error; out-of-range access is
  // checked in debug builds. Here: a valid proc with an aborted conflict
  // retries internally, so plain execution succeeds.
  RunTxns(db.get(), 5);
  SUCCEED();
}

TEST_F(DatabaseTest, AbortsAreRetriedTransparently) {
  auto db = MakeDb();
  RunTxns(db.get(), 50);
  // Single-threaded driving cannot conflict: zero aborts expected.
  EXPECT_EQ(db->txn_manager()->num_aborts(), 0u);
}

TEST_F(DatabaseTest, ContentHashStableAcrossIdenticalRuns) {
  auto db1 = MakeDb();
  auto db2 = MakeDb();
  RunTxns(db1.get(), 60, 7);
  RunTxns(db2.get(), 60, 7);
  EXPECT_EQ(db1->ContentHash(), db2->ContentHash());
}

TEST_F(DatabaseTest, SsdFilesAppearForLogsAndCheckpoints) {
  auto db = MakeDb();
  db->TakeCheckpoint();
  RunTxns(db.get(), 60);
  db->AdvanceEpoch();
  db->log_manager()->FinalizeAll();
  size_t log_files = 0, ckpt_files = 0;
  for (uint32_t d = 0; d < 2; ++d) {
    log_files += db->ssd(d)->ListFiles("log_").size();
    ckpt_files += db->ssd(d)->ListFiles("ckpt_").size();
  }
  EXPECT_GT(log_files, 0u);
  // Stripe files plus the ckpt_meta descriptor.
  EXPECT_EQ(ckpt_files, 2u * db->options().ckpt_files_per_ssd + 1);
}

}  // namespace
}  // namespace pacman
