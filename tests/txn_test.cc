// Tests for the epoch manager and optimistic transaction manager.
#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

#include <thread>

#include "storage/catalog.h"
#include "txn/epoch_manager.h"

namespace pacman::txn {
namespace {

storage::Table* MakeTable(storage::Catalog* c, const std::string& name) {
  return c->CreateTable(name, Schema({{"v", ValueType::kInt64, 0}}),
                        storage::IndexType::kHash);
}
Row IntRow(int64_t v) { return {Value(v)}; }

TEST(EpochManagerTest, AdvanceAndPepoch) {
  EpochManager em(2);
  EXPECT_EQ(em.current(), 1u);
  em.Advance();
  EXPECT_EQ(em.current(), 2u);
  EXPECT_EQ(em.PersistentEpoch(), 0u);  // Nothing persisted yet.
  em.SetLoggerPersisted(0, 2);
  EXPECT_EQ(em.PersistentEpoch(), 0u);  // Min over loggers.
  em.SetLoggerPersisted(1, 1);
  EXPECT_EQ(em.PersistentEpoch(), 1u);
}

TEST(TxnTest, ReadYourOwnWrites) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(5), 1);
  EpochManager em(0);
  TransactionManager tm(&em);

  Transaction txn = tm.Begin();
  Row out;
  ASSERT_TRUE(txn.Read(t, 1, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 5);
  txn.Write(t, 1, IntRow(6));
  ASSERT_TRUE(txn.Read(t, 1, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 6);  // Own write visible.
  txn.Delete(t, 1);
  EXPECT_EQ(txn.Read(t, 1, &out).code(), StatusCode::kNotFound);
}

TEST(TxnTest, CommitInstallsAtCommitTs) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(5), 1);
  EpochManager em(0);
  TransactionManager tm(&em);

  Transaction txn = tm.Begin();
  txn.Write(t, 1, IntRow(7));
  CommitInfo info;
  ASSERT_TRUE(tm.Commit(&txn, &info).ok());
  EXPECT_GT(info.commit_ts, 1u);
  Row out;
  ASSERT_TRUE(t->Read(1, info.commit_ts, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 7);
  ASSERT_TRUE(t->Read(1, info.commit_ts - 1, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 5);  // Old snapshot intact (MVCC).
  EXPECT_EQ(tm.LastCommitted(), info.commit_ts);
}

TEST(TxnTest, WriteWriteConflictAborts) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(5), 1);
  EpochManager em(0);
  TransactionManager tm(&em);

  Transaction t1 = tm.Begin();
  Transaction t2 = tm.Begin();
  Row out;
  ASSERT_TRUE(t1.Read(t, 1, &out).ok());
  ASSERT_TRUE(t2.Read(t, 1, &out).ok());
  t1.Write(t, 1, IntRow(10));
  t2.Write(t, 1, IntRow(20));
  CommitInfo info;
  ASSERT_TRUE(tm.Commit(&t1, &info).ok());
  EXPECT_EQ(tm.Commit(&t2, &info).code(), StatusCode::kAborted);
  EXPECT_EQ(tm.num_aborts(), 1u);
  ASSERT_TRUE(t->Read(1, kMaxTimestamp, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 10);  // Loser installed nothing.
}

TEST(TxnTest, ReadValidationCatchesStaleReads) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(5), 1);
  t->LoadRow(2, IntRow(6), 1);
  EpochManager em(0);
  TransactionManager tm(&em);

  // t2 reads key 1, then t1 updates key 1 and commits; t2 writes key 2.
  Transaction t2 = tm.Begin();
  Row out;
  ASSERT_TRUE(t2.Read(t, 1, &out).ok());
  Transaction t1 = tm.Begin();
  t1.Write(t, 1, IntRow(50));
  CommitInfo info;
  ASSERT_TRUE(tm.Commit(&t1, &info).ok());
  t2.Write(t, 2, IntRow(out[0].AsInt64() + 1));
  EXPECT_EQ(tm.Commit(&t2, &info).code(), StatusCode::kAborted);
}

TEST(TxnTest, InsertFailsWhenKeyExists) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(5), 1);
  EpochManager em(0);
  TransactionManager tm(&em);

  Transaction txn = tm.Begin();
  txn.Insert(t, 1, IntRow(9));
  CommitInfo info;
  EXPECT_EQ(tm.Commit(&txn, &info).code(), StatusCode::kAborted);

  Transaction txn2 = tm.Begin();
  txn2.Insert(t, 2, IntRow(9));
  EXPECT_TRUE(tm.Commit(&txn2, &info).ok());
}

TEST(TxnTest, DeleteThenReinsert) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(5), 1);
  EpochManager em(0);
  TransactionManager tm(&em);
  CommitInfo info;

  Transaction d = tm.Begin();
  d.Delete(t, 1);
  ASSERT_TRUE(tm.Commit(&d, &info).ok());
  Row out;
  EXPECT_EQ(t->Read(1, kMaxTimestamp, &out).code(), StatusCode::kNotFound);

  Transaction i = tm.Begin();
  i.Insert(t, 1, IntRow(77));
  ASSERT_TRUE(tm.Commit(&i, &info).ok());
  ASSERT_TRUE(t->Read(1, kMaxTimestamp, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 77);
}

TEST(TxnTest, CoalesceKeepsLastWritePerKey) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  EpochManager em(0);
  TransactionManager tm(&em);

  Transaction txn = tm.Begin();
  txn.Write(t, 1, IntRow(1));
  txn.Write(t, 2, IntRow(2));
  txn.Write(t, 1, IntRow(3));
  txn.CoalesceWrites();
  ASSERT_EQ(txn.write_set().size(), 2u);
  CommitInfo info;
  ASSERT_TRUE(tm.Commit(&txn, &info).ok());
  Row out;
  ASSERT_TRUE(t->Read(1, kMaxTimestamp, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 3);
}

TEST(TxnTest, CommitHookSeesWriteSetAndOrder) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(0), 1);
  EpochManager em(0);
  TransactionManager tm(&em);
  std::vector<Timestamp> hook_order;
  tm.set_commit_hook([&](const Transaction& txn, const CommitInfo& info) {
    EXPECT_FALSE(txn.write_set().empty());
    hook_order.push_back(info.commit_ts);
  });
  for (int i = 0; i < 5; ++i) {
    Transaction txn = tm.Begin();
    txn.Write(t, 1, IntRow(i));
    CommitInfo info;
    ASSERT_TRUE(tm.Commit(&txn, &info).ok());
  }
  ASSERT_EQ(hook_order.size(), 5u);
  EXPECT_TRUE(std::is_sorted(hook_order.begin(), hook_order.end()));
}

TEST(TxnTest, ConcurrentIncrementsSumCorrectly) {
  storage::Catalog c;
  storage::Table* t = MakeTable(&c, "t");
  t->LoadRow(1, IntRow(0), 1);
  EpochManager em(0);
  TransactionManager tm(&em);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 200;

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&]() {
      for (int n = 0; n < kIncrements; ++n) {
        while (true) {
          Transaction txn = tm.Begin();
          Row out;
          ASSERT_TRUE(txn.Read(t, 1, &out).ok());
          txn.Write(t, 1, IntRow(out[0].AsInt64() + 1));
          CommitInfo info;
          if (tm.Commit(&txn, &info).ok()) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  Row out;
  ASSERT_TRUE(t->Read(1, kMaxTimestamp, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), kThreads * kIncrements);
}

}  // namespace
}  // namespace pacman::txn
