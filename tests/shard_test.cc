// Partitioned-engine coverage: static and dynamic single-shard
// classification, content-hash parity between sharded and unsharded
// engines (ContentHash is an order-independent per-key mix, so it is
// invariant under partitioning — any divergence is a real state
// difference), cross-shard money conservation under concurrent workers,
// and process-restart recovery through the per-shard lanes for all five
// schemes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pacman/database.h"
#include "pacman/workload_driver.h"
#include "storage/shard.h"
#include "test_util.h"
#include "workload/bank.h"
#include "workload/smallbank.h"
#include "workload/tpcc.h"

namespace pacman {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kShards = 4;

DatabaseOptions SimOptions(logging::LogScheme scheme, uint32_t num_shards) {
  DatabaseOptions opts;
  opts.scheme = scheme;
  opts.num_shards = num_shards;
  opts.commits_per_epoch = 10;
  opts.epochs_per_batch = 2;
  return opts;
}

// --- ShardOfKey ----------------------------------------------------------

TEST(ShardOfKeyTest, SingleShardAlwaysZero) {
  for (Key k : {Key{0}, Key{1}, Key{12345}, Key{~0ull}}) {
    EXPECT_EQ(storage::ShardOfKey(k, 1), 0u);
    EXPECT_EQ(storage::ShardOfKey(k, 0), 0u);
  }
}

TEST(ShardOfKeyTest, SpreadsSequentialKeysAcrossAllShards) {
  // Sequential keys (the common synthetic-workload shape) must not pile
  // onto one partition; the finalizer should populate every shard.
  std::set<uint32_t> seen;
  for (Key k = 0; k < 1000; ++k) {
    const uint32_t s = storage::ShardOfKey(k, kShards);
    ASSERT_LT(s, kShards);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), kShards);
}

// --- Option validation ---------------------------------------------------

TEST(ShardValidationDeathTest, RejectsZeroShards) {
  DatabaseOptions opts;
  opts.num_shards = 0;
  EXPECT_DEATH(Database{opts}, "num_shards must be >= 1");
}

TEST(ShardValidationTest, ShardedEngineForcesOneLoggerPerShard) {
  Database db(SimOptions(logging::LogScheme::kCommand, kShards));
  EXPECT_EQ(db.options().num_loggers, kShards);
  EXPECT_EQ(db.log_manager()->num_shards(), kShards);
}

// --- Static classification (proc/compiler.cc summary bit) ----------------

TEST(ShardStaticClassificationTest, SmallbankProcedures) {
  Database db(SimOptions(logging::LogScheme::kCommand, kShards));
  workload::Smallbank sb;
  sb.Install(&db);
  db.FinalizeSchema();
  auto is_static = [&](ProcId id) {
    return db.programs().Get(id).summary.single_shard_static;
  };
  // Every access keyed by P(0): one key value per execution, one shard.
  EXPECT_TRUE(is_static(sb.deposit_checking_id()));
  EXPECT_TRUE(is_static(sb.transact_savings_id()));
  EXPECT_TRUE(is_static(sb.write_check_id()));
  EXPECT_TRUE(is_static(sb.balance_id()));
  // Two distinct account parameters: may straddle shards.
  EXPECT_FALSE(is_static(sb.amalgamate_id()));
  EXPECT_FALSE(is_static(sb.send_payment_id()));
}

TEST(ShardStaticClassificationTest, BankProcedures) {
  Database db(SimOptions(logging::LogScheme::kCommand, kShards));
  workload::Bank bank;
  bank.Install(&db);
  db.FinalizeSchema();
  // Transfer touches spouse/nation rows, Deposit the per-nation stats
  // row: several key expressions each, so neither is statically
  // single-shard.
  EXPECT_FALSE(
      db.programs().Get(bank.transfer_id()).summary.single_shard_static);
  EXPECT_FALSE(
      db.programs().Get(bank.deposit_id()).summary.single_shard_static);
}

TEST(ShardStaticClassificationTest, TpccProcedures) {
  Database db(SimOptions(logging::LogScheme::kCommand, kShards));
  workload::Tpcc tpcc({.num_warehouses = 2,
                       .districts_per_warehouse = 2,
                       .customers_per_district = 30,
                       .num_items = 40,
                       .orders_per_district = 8,
                       .items_per_order = 3});
  tpcc.Install(&db);
  db.FinalizeSchema();
  // Every TPC-C procedure touches rows of several tables under distinct
  // composite keys (warehouse, district, customer, order lines…).
  for (ProcId id : {tpcc.new_order_id(), tpcc.payment_id(),
                    tpcc.delivery_id(), tpcc.stock_level_id(),
                    tpcc.order_status_id()}) {
    EXPECT_FALSE(db.programs().Get(id).summary.single_shard_static)
        << "proc " << id;
  }
}

// --- Dynamic classification (logging/log_manager.cc StageSharded) --------

TEST(ShardDynamicClassificationTest, CountsSingleAndCrossShardCommits) {
  Database db(SimOptions(logging::LogScheme::kCommand, kShards));
  workload::Smallbank sb({.num_accounts = 200});
  sb.Install(&db);
  db.FinalizeSchema();
  db.TakeCheckpoint();

  // A statically single-shard procedure routes without any access scan.
  ASSERT_TRUE(db.ExecuteProcedure(sb.deposit_checking_id(),
                                  {Value(int64_t{3}), Value(1.0)})
                  .ok());
  EXPECT_EQ(db.log_manager()->single_shard_commits(), 1u);
  EXPECT_EQ(db.log_manager()->cross_shard_commits(), 0u);

  // Pick one same-shard pair and one cross-shard pair of accounts.
  int64_t same_a = -1, same_b = -1, cross_a = -1, cross_b = -1;
  for (int64_t a = 0; a < 200 && (same_a < 0 || cross_a < 0); ++a) {
    for (int64_t b = a + 1; b < 200; ++b) {
      const bool same = storage::ShardOfKey(a, kShards) ==
                        storage::ShardOfKey(b, kShards);
      if (same && same_a < 0) {
        same_a = a;
        same_b = b;
      } else if (!same && cross_a < 0) {
        cross_a = a;
        cross_b = b;
      }
    }
  }
  ASSERT_GE(same_a, 0);
  ASSERT_GE(cross_a, 0);

  // SendPayment is not statically single-shard; the dynamic write/read
  // scan classifies each execution by its actual keys.
  ASSERT_TRUE(db.ExecuteProcedure(
                    sb.send_payment_id(),
                    {Value(same_a), Value(same_b), Value(1.0)})
                  .ok());
  EXPECT_EQ(db.log_manager()->single_shard_commits(), 2u);
  EXPECT_EQ(db.log_manager()->cross_shard_commits(), 0u);

  ASSERT_TRUE(db.ExecuteProcedure(
                    sb.send_payment_id(),
                    {Value(cross_a), Value(cross_b), Value(1.0)})
                  .ok());
  EXPECT_EQ(db.log_manager()->single_shard_commits(), 2u);
  EXPECT_EQ(db.log_manager()->cross_shard_commits(), 1u);
}

// --- Sharded vs unsharded content-hash parity ----------------------------

struct ShardSchemeCase {
  logging::LogScheme log;
  recovery::Scheme rec;
};

class ShardHashParityTest
    : public ::testing::TestWithParam<ShardSchemeCase> {};

// The same workload against a 1-shard and a 4-shard engine must produce
// identical logical state, before and after a crash/recovery cycle —
// partitioning is a layout decision, never a semantic one.
TEST_P(ShardHashParityTest, ShardCountsAgreeBeforeAndAfterRecovery) {
  const ShardSchemeCase param = GetParam();
  auto run = [&](uint32_t num_shards) -> std::unique_ptr<Database> {
    auto db = std::make_unique<Database>(SimOptions(param.log, num_shards));
    workload::Smallbank sb({.num_accounts = 120});
    sb.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    Rng rng(17);
    std::vector<Value> params;
    for (int i = 0; i < 90; ++i) {
      ProcId proc = sb.NextTransaction(&rng, &params);
      EXPECT_TRUE(
          db->ExecuteProcedure(proc, params, /*adhoc=*/i % 7 == 0).ok());
    }
    db->AdvanceEpoch();
    return db;
  };

  std::unique_ptr<Database> unsharded = run(1);
  std::unique_ptr<Database> sharded = run(kShards);
  const uint64_t hash = unsharded->ContentHash();
  ASSERT_EQ(sharded->ContentHash(), hash);
  // The sharded engine must actually have split work across loggers.
  EXPECT_GT(sharded->log_manager()->single_shard_commits(), 0u);
  EXPECT_GT(sharded->log_manager()->cross_shard_commits(), 0u);

  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  for (Database* db : {unsharded.get(), sharded.get()}) {
    db->Crash();
    db->Recover(param.rec, ropts, ExecutionBackend::kThreads);
    EXPECT_EQ(db->ContentHash(), hash);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ShardHashParityTest,
    ::testing::Values(
        ShardSchemeCase{logging::LogScheme::kPhysical, recovery::Scheme::kPlr},
        ShardSchemeCase{logging::LogScheme::kLogical, recovery::Scheme::kLlr},
        ShardSchemeCase{logging::LogScheme::kLogical, recovery::Scheme::kLlrP},
        ShardSchemeCase{logging::LogScheme::kCommand, recovery::Scheme::kClr},
        ShardSchemeCase{logging::LogScheme::kCommand,
                        recovery::Scheme::kClrP}));

// --- Cross-shard atomicity under concurrency -----------------------------

TEST(ShardConcurrencyTest, CrossShardPaymentsConserveMoneyAt8Workers) {
  auto db = std::make_unique<Database>(
      SimOptions(logging::LogScheme::kCommand, kShards));
  workload::Smallbank sb({.num_accounts = 400});
  sb.Install(db.get());
  db->FinalizeSchema();
  db->TakeCheckpoint();

  const Timestamp t0 = db->txn_manager()->LastCommitted();
  const double sum_before = testutil::VisibleSum(
      db->catalog()->GetTable(db->catalog()->GetTableId("Checking")), t0);

  // Checking-to-checking transfers only: total checking balance is an
  // invariant every commit must preserve, including cross-shard commits
  // whose log records split across loggers.
  WorkloadDriver driver(db.get(), [&](Rng* rng, std::vector<Value>* params) {
    const int64_t a = rng->UniformInt(0, 399);
    int64_t b = rng->UniformInt(0, 398);
    if (b >= a) ++b;
    params->assign({Value(a), Value(b), Value(5.0)});
    return sb.send_payment_id();
  });
  DriverOptions dopts;
  dopts.num_workers = 8;
  dopts.num_txns = 2000;
  dopts.adhoc_fraction = 0.25;
  DriverResult r = driver.Run(dopts);
  ASSERT_EQ(r.failed, 0u);
  ASSERT_EQ(r.committed, dopts.num_txns);
  db->AdvanceEpoch();
  EXPECT_GT(db->log_manager()->cross_shard_commits(), 0u);

  const Timestamp t1 = db->txn_manager()->LastCommitted();
  EXPECT_DOUBLE_EQ(
      testutil::VisibleSum(
          db->catalog()->GetTable(db->catalog()->GetTableId("Checking")), t1),
      sum_before);

  // The invariant must survive per-shard recovery too.
  const uint64_t hash = db->ContentHash();
  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClr, ropts, ExecutionBackend::kThreads);
  EXPECT_EQ(db->ContentHash(), hash);
  const Timestamp t2 = db->txn_manager()->LastCommitted();
  EXPECT_DOUBLE_EQ(
      testutil::VisibleSum(
          db->catalog()->GetTable(db->catalog()->GetTableId("Checking")), t2),
      sum_before);
}

// --- Process-restart recovery through the per-shard lanes ----------------

class ShardRestartRecoveryTest
    : public ::testing::TestWithParam<ShardSchemeCase> {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "pacman_shard_XXXXXX").string();
    char* created = ::mkdtemp(tmpl.data());
    ASSERT_NE(created, nullptr);
    dir_ = created;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  DatabaseOptions ShardedFileOptions(logging::LogScheme scheme) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    opts.num_shards = kShards;
    // One device per shard: each shard's logger stream (and checkpoint
    // stripes) on its own directory, the layout ApplyDeviceFlags sets up.
    opts.num_ssds = kShards;
    opts.device = device::DeviceKind::kFile;
    opts.log_dir = dir_;
    opts.commits_per_epoch = 10;
    opts.epochs_per_batch = 2;
    return opts;
  }

  void RunTxns(Database* db, int n, uint64_t seed = 1) {
    Rng rng(seed);
    std::vector<Value> params;
    for (int i = 0; i < n; ++i) {
      ProcId proc = bank_.NextTransaction(&rng, &params);
      ASSERT_TRUE(
          db->ExecuteProcedure(proc, params, /*adhoc=*/i % 5 == 0).ok());
    }
    db->AdvanceEpoch();
  }

  std::string dir_;
  // single_fraction = 0 so every Transfer writes; Transfer's multi-key
  // write sets make cross-shard records a certainty at 4 shards.
  workload::Bank bank_{workload::BankConfig{
      .num_users = 100, .num_nations = 4, .single_fraction = 0.0}};
};

// kill -9 equivalence: destroy the sharded Database with no shutdown
// handshake, reopen the directory, recover over one lane per shard, and
// require exact state parity — for every scheme.
TEST_P(ShardRestartRecoveryTest, SurvivesProcessRestartPerShard) {
  const ShardSchemeCase param = GetParam();
  uint64_t hash_before = 0;
  {
    auto db = std::make_unique<Database>(ShardedFileOptions(param.log));
    ASSERT_FALSE(db->opened_existing_state());
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 80);
    hash_before = db->ContentHash();
  }

  auto db = std::make_unique<Database>(ShardedFileOptions(param.log));
  EXPECT_TRUE(db->opened_existing_state());
  EXPECT_TRUE(db->crashed());
  bank_.CreateTables(db->catalog());
  bank_.RegisterProcedures(db->registry());
  db->FinalizeSchema();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  FullRecoveryResult r =
      db->Recover(param.rec, ropts, ExecutionBackend::kThreads);
  EXPECT_FALSE(db->crashed());
  EXPECT_GT(r.log.records_replayed, 0u);
  EXPECT_EQ(db->ContentHash(), hash_before);

  // The recovered sharded database accepts new work.
  RunTxns(db.get(), 10, /*seed=*/9);
  EXPECT_NE(db->ContentHash(), hash_before);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ShardRestartRecoveryTest,
    ::testing::Values(
        ShardSchemeCase{logging::LogScheme::kPhysical, recovery::Scheme::kPlr},
        ShardSchemeCase{logging::LogScheme::kLogical, recovery::Scheme::kLlr},
        ShardSchemeCase{logging::LogScheme::kLogical, recovery::Scheme::kLlrP},
        ShardSchemeCase{logging::LogScheme::kCommand, recovery::Scheme::kClr},
        ShardSchemeCase{logging::LogScheme::kCommand,
                        recovery::Scheme::kClrP}));

}  // namespace
}  // namespace pacman
