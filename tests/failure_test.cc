// Failure-injection tests: corrupted and truncated log/checkpoint files
// must be rejected with kCorruption, never mis-parsed.
#include <gtest/gtest.h>

#include "logging/checkpointer.h"
#include "logging/log_store.h"
#include "pacman/database.h"
#include "workload/bank.h"

namespace pacman {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> MakeDbWithLogs() {
    DatabaseOptions opts;
    opts.scheme = logging::LogScheme::kCommand;
    opts.commits_per_epoch = 10;
    opts.epochs_per_batch = 2;
    auto db = std::make_unique<Database>(opts);
    bank_.CreateTables(db->catalog());
    bank_.RegisterProcedures(db->registry());
    bank_.Load(db->catalog());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    Rng rng(1);
    std::vector<Value> params;
    for (int i = 0; i < 60; ++i) {
      ProcId proc = bank_.NextTransaction(&rng, &params);
      PACMAN_CHECK(db->ExecuteProcedure(proc, params).ok());
    }
    db->AdvanceEpoch();
    db->log_manager()->FinalizeAll();
    return db;
  }

  workload::Bank bank_{workload::BankConfig{
      .num_users = 100, .num_nations = 4, .single_fraction = 0.0}};
};

TEST_F(FailureTest, TruncatedBatchFileIsRejected) {
  auto db = MakeDbWithLogs();
  auto names = db->ssd(0)->ListFiles("log_");
  ASSERT_FALSE(names.empty());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(db->ssd(0)->ReadFile(names[0], &bytes).ok());
  // Truncate in the middle of the record area.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + bytes.size() / 2);
  logging::LogBatch out;
  Status s = logging::LogStore::DeserializeBatch(logging::LogScheme::kCommand,
                                                 truncated, &out);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_F(FailureTest, BitFlippedMagicIsRejected) {
  auto db = MakeDbWithLogs();
  auto names = db->ssd(0)->ListFiles("log_");
  ASSERT_FALSE(names.empty());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(db->ssd(0)->ReadFile(names[0], &bytes).ok());
  std::vector<uint8_t> corrupted = bytes;
  corrupted[0] ^= 0xff;
  logging::LogBatch out;
  EXPECT_EQ(logging::LogStore::DeserializeBatch(logging::LogScheme::kCommand,
                                                corrupted, &out)
                .code(),
            StatusCode::kCorruption);
}

TEST_F(FailureTest, WrongSchemeParseFailsOrDiverges) {
  // A command-log batch parsed as a logical batch must not round-trip
  // into a structurally valid equivalent: either it errors, or the
  // records it produces differ from the command-log parse.
  auto db = MakeDbWithLogs();
  auto names = db->ssd(0)->ListFiles("log_");
  ASSERT_FALSE(names.empty());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(db->ssd(0)->ReadFile(names[0], &bytes).ok());
  logging::LogBatch as_cl, as_ll;
  ASSERT_TRUE(logging::LogStore::DeserializeBatch(
                  logging::LogScheme::kCommand, bytes, &as_cl)
                  .ok());
  Status s = logging::LogStore::DeserializeBatch(logging::LogScheme::kLogical,
                                                 bytes, &as_ll);
  if (s.ok()) {
    bool differs = as_ll.records.size() != as_cl.records.size();
    for (size_t i = 0; !differs && i < as_ll.records.size(); ++i) {
      differs = as_ll.records[i].writes.size() !=
                as_cl.records[i].writes.size();
    }
    EXPECT_TRUE(differs);
  } else {
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
  }
}

TEST_F(FailureTest, MissingFilesReportNotFound) {
  device::SimulatedSsd ssd;
  std::vector<uint8_t> bytes;
  EXPECT_EQ(ssd.ReadFile("nope", &bytes).code(), StatusCode::kNotFound);
  storage::Catalog catalog;
  logging::Checkpointer ckpt(&catalog, logging::LogScheme::kCommand, {&ssd});
  logging::CheckpointMeta meta;
  EXPECT_EQ(ckpt.ReadLatestMeta(&meta).code(), StatusCode::kNotFound);
}

TEST_F(FailureTest, CorruptCheckpointStripeIsRejected) {
  auto db = MakeDbWithLogs();
  logging::Checkpointer ckpt(db->catalog(), logging::LogScheme::kCommand,
                             db->ssd_ptrs());
  logging::CheckpointMeta meta;
  ASSERT_TRUE(ckpt.ReadLatestMeta(&meta).ok());
  const std::string name = logging::Checkpointer::StripeFileName(meta.id, 0, 0);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(db->ssd(0)->ReadFile(name, &bytes).ok());
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + bytes.size() - 3);
  ASSERT_TRUE(db->ssd(0)->WriteFile(name, std::move(truncated)).ok());
  logging::CheckpointStripe stripe;
  EXPECT_EQ(ckpt.ReadStripe(meta, 0, 0, &stripe).code(),
            StatusCode::kCorruption);
}

TEST_F(FailureTest, RecordsBeyondPepochAreNotReplayed) {
  // A log batch whose records postdate the pepoch watermark models an
  // epoch that was only partially persisted at the crash: its results
  // were never released to clients and must not be replayed (Appendix A).
  auto db = MakeDbWithLogs();
  const uint64_t pre = db->ContentHash();
  db->Crash();

  logging::LogBatch rogue;
  rogue.logger_id = 0;
  rogue.seq = 9999;
  logging::LogRecord rec;
  rec.commit_ts = 1u << 30;  // Far past everything replayable.
  rec.epoch = 1u << 20;      // Far past the persisted epoch.
  rec.proc = kAdhocProcId;
  rec.writes.push_back(
      {db->catalog()->GetTableId("Current"), 0, {Value(-1e9)}, false});
  rogue.first_epoch = rogue.last_epoch = rec.epoch;
  rogue.records.push_back(rec);
  ASSERT_TRUE(
      db->ssd(0)
          ->WriteFile(logging::LogStore::BatchFileName(0, rogue.seq),
                      logging::LogStore::SerializeBatch(
                          logging::LogScheme::kCommand, rogue))
          .ok());

  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(db->ContentHash(), pre) << "unpersisted-epoch record replayed";
}

TEST_F(FailureTest, CrashBeforeAnyCheckpointIsDetected) {
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  bank_.CreateTables(db.catalog());
  bank_.RegisterProcedures(db.registry());
  bank_.Load(db.catalog());
  db.FinalizeSchema();
  db.Crash();
  // Recovering without a checkpoint is a deployment error; the death is
  // the documented contract (PACMAN_CHECK in Recover).
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 1;
  EXPECT_DEATH(db.Recover(recovery::Scheme::kClrP, ropts), "");
}

}  // namespace
}  // namespace pacman
