// Pipelined-recovery suite: the parallel load + streaming merge path
// (recovery/log_pipeline.h) must produce bit-identical post-recovery
// table state to the serial reference loader for every scheme, stay
// seq-ordered under out-of-order fragment arrival, and fail loudly (with
// file name + offset) on corrupt batch files.
#include "recovery/log_pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <thread>

#include "device/file_device.h"
#include "pacman/database.h"
#include "workload/bank.h"
#include "workload/tpcc.h"

namespace pacman {
namespace {

using logging::LogScheme;
using recovery::RecoveryOptions;
using recovery::Scheme;

LogScheme SchemeLogFormat(Scheme s) {
  switch (s) {
    case Scheme::kPlr:
      return LogScheme::kPhysical;
    case Scheme::kLlr:
    case Scheme::kLlrP:
      return LogScheme::kLogical;
    case Scheme::kClr:
    case Scheme::kClrP:
      return LogScheme::kCommand;
  }
  return LogScheme::kCommand;
}

// --- Parity: pipelined recovery == serial recovery, per scheme ------------

enum class Workload { kBank, kTpcc };

class RecoveryParityTest
    : public ::testing::TestWithParam<std::tuple<Scheme, Workload>> {};

// One database, one log: recover it three times (serial loader, pipelined
// loader on the simulated backend, pipelined + overlapped replay on real
// threads) and demand the identical content hash each time. Re-crashing a
// recovered database appends only empty flush batches, so every recovery
// replays the same committed history.
TEST_P(RecoveryParityTest, PipelinedMatchesSerialState) {
  const Scheme scheme = std::get<0>(GetParam());
  const Workload workload = std::get<1>(GetParam());

  DatabaseOptions opts;
  opts.scheme = SchemeLogFormat(scheme);
  opts.num_ssds = 2;
  opts.num_loggers = 3;  // Multi-logger: every seq has several fragments.
  opts.epochs_per_batch = 2;
  opts.commits_per_epoch = 30;
  Database db(opts);

  workload::Bank bank(
      {.num_users = 300, .num_nations = 8, .single_fraction = 0.1});
  workload::Tpcc tpcc({.num_warehouses = 2,
                       .districts_per_warehouse = 4,
                       .customers_per_district = 40,
                       .num_items = 80,
                       .orders_per_district = 6});
  std::function<ProcId(Rng*, std::vector<Value>*)> next;
  if (workload == Workload::kBank) {
    bank.Install(&db);
    next = [&](Rng* rng, std::vector<Value>* p) {
      return bank.NextTransaction(rng, p);
    };
  } else {
    tpcc.Install(&db);
    next = [&](Rng* rng, std::vector<Value>* p) {
      return tpcc.NextTransaction(rng, p);
    };
  }
  db.FinalizeSchema();
  db.TakeCheckpoint();

  Rng rng(7);
  std::vector<Value> params;
  for (int i = 0; i < 260; ++i) {
    ProcId proc = next(&rng, &params);
    ASSERT_TRUE(db.ExecuteProcedure(proc, params).ok());
    if (i == 130) db.TakeCheckpoint();  // Mid-run checkpoint.
  }
  const uint64_t pre_crash = db.ContentHash();
  db.Crash();

  RecoveryOptions serial;
  serial.num_threads = 4;
  serial.pipelined_load = false;
  FullRecoveryResult rs = db.Recover(scheme, serial);
  const uint64_t serial_hash = db.ContentHash();
  EXPECT_EQ(serial_hash, pre_crash);
  EXPECT_GT(rs.log.records_replayed, 0u);

  db.Crash();
  RecoveryOptions piped;
  piped.num_threads = 4;
  piped.pipelined_load = true;
  db.Recover(scheme, piped);
  EXPECT_EQ(db.ContentHash(), serial_hash)
      << "pipelined (simulated backend) diverged from serial recovery";

  db.Crash();
  piped.load_threads = 3;
  db.Recover(scheme, piped, ExecutionBackend::kThreads);
  EXPECT_EQ(db.ContentHash(), serial_hash)
      << "pipelined (overlapped real-thread backend) diverged from serial";
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RecoveryParityTest,
    ::testing::Combine(::testing::Values(Scheme::kPlr, Scheme::kLlr,
                                         Scheme::kLlrP, Scheme::kClr,
                                         Scheme::kClrP),
                       ::testing::Values(Workload::kBank, Workload::kTpcc)));

// --- Out-of-order fragment arrival ----------------------------------------

// Delegating device that delays every read, so this device's fragments
// reliably arrive after the other device finished its whole stream — the
// streaming merge must still emit global batches in ascending seq with
// exactly the serial merge's contents.
class SlowReadDevice final : public device::StorageDevice {
 public:
  SlowReadDevice(device::StorageDevice* inner, int delay_ms)
      : inner_(inner), delay_ms_(delay_ms) {}

  device::IoResult WriteFile(const std::string& name,
                             std::vector<uint8_t> bytes) override {
    return inner_->WriteFile(name, std::move(bytes));
  }
  device::IoResult AppendFile(const std::string& name,
                              const std::vector<uint8_t>& bytes) override {
    return inner_->AppendFile(name, bytes);
  }
  Status ReadFile(const std::string& name,
                  std::vector<uint8_t>* out) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->ReadFile(name, out);
  }
  bool Exists(const std::string& name) const override {
    return inner_->Exists(name);
  }
  std::vector<std::string> ListFiles(
      const std::string& prefix) const override {
    return inner_->ListFiles(prefix);
  }
  void RemoveAll() override { inner_->RemoveAll(); }
  device::IoResult RemoveFile(const std::string& name) override {
    return inner_->RemoveFile(name);
  }
  size_t FileSize(const std::string& name) const override {
    return inner_->FileSize(name);
  }
  device::IoResult SyncBarrier() override { return inner_->SyncBarrier(); }
  bool IsPersistent() const override { return inner_->IsPersistent(); }
  double WriteSeconds(size_t bytes) const override {
    return inner_->WriteSeconds(bytes);
  }
  double ReadSeconds(size_t bytes) const override {
    return inner_->ReadSeconds(bytes);
  }
  double FsyncSeconds() const override { return inner_->FsyncSeconds(); }

 private:
  device::StorageDevice* inner_;
  int delay_ms_;
};

TEST(StreamingMergeTest, OutOfOrderSeqArrivalStaysSeqOrdered) {
  DatabaseOptions opts;
  opts.scheme = LogScheme::kCommand;
  opts.num_ssds = 2;
  opts.num_loggers = 4;  // Two loggers per device: multi-fragment seqs.
  opts.epochs_per_batch = 2;
  opts.commits_per_epoch = 20;
  Database db(opts);
  workload::Bank bank(
      {.num_users = 200, .num_nations = 4, .single_fraction = 0.1});
  bank.Install(&db);
  db.FinalizeSchema();
  db.TakeCheckpoint();
  Rng rng(3);
  std::vector<Value> params;
  for (int i = 0; i < 200; ++i) {
    ProcId proc = bank.NextTransaction(&rng, &params);
    ASSERT_TRUE(db.ExecuteProcedure(proc, params).ok());
  }
  db.Crash();

  // Serial reference merge.
  std::vector<logging::LogBatch> raw;
  ASSERT_TRUE(logging::LogStore::LoadAllBatches(LogScheme::kCommand,
                                                db.device_ptrs(), &raw)
                  .ok());
  std::vector<recovery::GlobalBatch> expected =
      recovery::MergeBatches(raw, opts.num_ssds, /*checkpoint_ts=*/0);
  ASSERT_GT(expected.size(), 2u);

  // Pipelined load with device 0 delayed: logger 0/2 fragments of every
  // seq arrive after device 1 already delivered logger 1/3 for all seqs,
  // so completion order is maximally out of order w.r.t. seq order.
  SlowReadDevice slow(db.device(0), /*delay_ms=*/5);
  std::vector<device::StorageDevice*> devices = {&slow, db.device(1)};
  exec::ThreadPool pool(4);
  recovery::LogPipelineOptions lopts;
  lopts.num_threads = 4;
  lopts.checkpoint_ts = 0;
  lopts.num_ssds = opts.num_ssds;
  recovery::PipelinedLogLoader loader(LogScheme::kCommand, devices, &pool,
                                      lopts);
  loader.Start();
  ASSERT_EQ(loader.num_batches(), expected.size());
  // WaitBatch in seq order while later fragments are still loading.
  for (size_t k = 0; k < loader.num_batches(); ++k) {
    const recovery::GlobalBatch* got = loader.WaitBatch(k);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->seq, expected[k].seq);
    ASSERT_EQ(got->records.size(), expected[k].records.size()) << "seq " << k;
    for (size_t i = 0; i < got->records.size(); ++i) {
      EXPECT_EQ(got->records[i]->commit_ts, expected[k].records[i]->commit_ts);
      EXPECT_EQ(got->records[i]->proc, expected[k].records[i]->proc);
      EXPECT_EQ(got->records[i]->params.size(),
                expected[k].records[i]->params.size());
      for (size_t v = 0; v < got->records[i]->params.size(); ++v) {
        EXPECT_TRUE(got->records[i]->params[v] ==
                    expected[k].records[i]->params[v]);
      }
    }
  }
  ASSERT_TRUE(loader.WaitAll().ok());
  EXPECT_GT(loader.total_records(), 0u);
}

// --- Corrupt batch files fail loudly with file name + offset --------------

TEST(CorruptBatchTest, TruncatedBatchFileOnPersistentDeviceIsLoud) {
  char tmpl[] = "/tmp/pacman_corrupt_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  device::FileDevice dev({.dir = dir + "/dev0"});

  logging::LogBatch batch;
  batch.logger_id = 0;
  batch.seq = 3;
  for (int i = 0; i < 5; ++i) {
    logging::LogRecord rec;
    rec.commit_ts = 100 + i;
    rec.epoch = 1;
    rec.proc = kAdhocProcId;
    rec.writes.push_back(
        {0, static_cast<Key>(i), {Value(1.5), Value(std::string("row"))},
         false});
    batch.records.push_back(std::move(rec));
  }
  std::vector<uint8_t> bytes =
      logging::LogStore::SerializeBatch(LogScheme::kCommand, batch);
  const std::string name = logging::LogStore::BatchFileName(0, batch.seq);

  // A newer, intact file in the same logger stream: `name` is then an
  // *interior* file, where truncation is impossible in a crash (interior
  // files were complete before the next one opened) and must stay loud.
  // Only the newest file of a stream gets the torn-tail tolerance.
  logging::LogBatch newer = batch;
  newer.seq = batch.seq + 1;
  ASSERT_TRUE(dev.WriteFile(logging::LogStore::BatchFileName(0, newer.seq),
                            logging::LogStore::SerializeBatch(
                                LogScheme::kCommand, newer))
                  .ok());

  // Truncated mid-record: the serial loader reports file + offset.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + bytes.size() / 2);
  ASSERT_TRUE(dev.WriteFile(name, truncated).ok());
  std::vector<logging::LogBatch> out;
  Status s = logging::LogStore::LoadAllBatches(LogScheme::kCommand, {&dev},
                                               &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find(name), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("offset"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("record"), std::string::npos) << s.message();

  // The pipelined loader reports the same corruption through WaitAll and
  // returns nullptr from WaitBatch instead of hanging.
  {
    exec::ThreadPool pool(2);
    std::vector<device::StorageDevice*> devices = {&dev};
    recovery::PipelinedLogLoader loader(LogScheme::kCommand, devices, &pool,
                                        {});
    loader.Start();
    ASSERT_EQ(loader.num_batches(), 2u);
    EXPECT_EQ(loader.WaitBatch(0), nullptr);
    Status ps = loader.WaitAll();
    ASSERT_FALSE(ps.ok());
    EXPECT_EQ(ps.code(), StatusCode::kCorruption);
    EXPECT_NE(ps.message().find(name), std::string::npos) << ps.message();
    EXPECT_NE(ps.message().find("offset"), std::string::npos) << ps.message();
  }

  // Garbage contents (bad magic) are corruption too, not a quiet skip.
  ASSERT_TRUE(dev.WriteFile(name, std::vector<uint8_t>(64, 0xab)).ok());
  s = logging::LogStore::LoadAllBatches(LogScheme::kCommand, {&dev}, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find(name), std::string::npos) << s.message();

  // A valid header with a garbage record count must be rejected by the
  // bytes-remaining bound, not attempted as a giant allocation.
  std::vector<uint8_t> bad_count = bytes;
  // After magic + header (logger, seq, epochs, min_cts/max_cts interval).
  const size_t count_off = 4 + 4 + 8 + 8 + 8 + 8 + 8;
  for (int i = 0; i < 4; ++i) bad_count[count_off + i] = 0xff;
  ASSERT_TRUE(dev.WriteFile(name, bad_count).ok());
  s = logging::LogStore::LoadAllBatches(LogScheme::kCommand, {&dev}, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("count"), std::string::npos) << s.message();

  dev.RemoveAll();
  std::filesystem::remove_all(dir);
}

// --- Pre-sized serialization and zero-copy parsing ------------------------

logging::LogBatch MixedBatch(LogScheme scheme) {
  logging::LogBatch batch;
  batch.logger_id = 1;
  batch.seq = 12;
  batch.first_epoch = 2;
  batch.last_epoch = 4;
  for (int i = 0; i < 4; ++i) {
    logging::LogRecord rec;
    rec.commit_ts = 50 + i;
    rec.epoch = 3;
    if (scheme == LogScheme::kCommand && i % 2 == 0) {
      rec.proc = 0;
      rec.params = {Value(int64_t{7}), Value(2.25),
                    Value(std::string("a string parameter")), Value::Null()};
    } else {
      rec.proc = kAdhocProcId;
      rec.writes.push_back({2, static_cast<Key>(i),
                            {Value(int64_t{1}), Value(std::string("abcdef")),
                             Value::Null()},
                            i == 3});
    }
    batch.records.push_back(std::move(rec));
  }
  return batch;
}

TEST(BatchSerializationTest, PredictedSizeIsExact) {
  for (LogScheme scheme :
       {LogScheme::kPhysical, LogScheme::kLogical, LogScheme::kCommand}) {
    logging::LogBatch batch = MixedBatch(scheme);
    if (scheme != LogScheme::kCommand) {
      for (auto& rec : batch.records) rec.proc = kAdhocProcId;
    }
    std::vector<uint8_t> bytes =
        logging::LogStore::SerializeBatch(scheme, batch);
    EXPECT_EQ(bytes.size(),
              logging::LogStore::SerializedBatchBytes(scheme, batch))
        << logging::LogSchemeName(scheme);
  }
}

TEST(BatchSerializationTest, ZeroCopyParseBorrowsAndMaterializesOnCopy) {
  logging::LogBatch batch = MixedBatch(LogScheme::kCommand);
  std::vector<uint8_t> bytes =
      logging::LogStore::SerializeBatch(LogScheme::kCommand, batch);

  logging::LogBatch parsed;
  logging::BatchParseOptions popts;
  popts.borrow = true;
  popts.file_name = "test.batch";
  ASSERT_TRUE(logging::LogStore::DeserializeBatch(LogScheme::kCommand, bytes,
                                                  popts, &parsed)
                  .ok());
  ASSERT_EQ(parsed.records.size(), batch.records.size());
  ASSERT_NE(parsed.backing, nullptr);

  // String params view the retained buffer; copies own their bytes.
  const Value& borrowed = parsed.records[0].params[2];
  ASSERT_EQ(borrowed.type(), ValueType::kString);
  EXPECT_TRUE(borrowed.is_borrowed());
  EXPECT_EQ(borrowed.AsStringView(), "a string parameter");
  const uint8_t* lo = parsed.backing->data();
  const uint8_t* hi = lo + parsed.backing->size();
  const auto* p =
      reinterpret_cast<const uint8_t*>(borrowed.AsStringView().data());
  EXPECT_TRUE(p >= lo && p < hi) << "borrowed string is not zero-copy";
  Value copy = borrowed;
  EXPECT_FALSE(copy.is_borrowed());
  EXPECT_TRUE(copy == borrowed);

  // Moving the batch (as the pipeline's fragment slots do) keeps the
  // views valid: the backing vector's heap buffer moves with it.
  logging::LogBatch moved = std::move(parsed);
  EXPECT_EQ(moved.records[0].params[2].AsStringView(), "a string parameter");

  // Round-trip equality against a copy-mode parse.
  logging::LogBatch copied;
  ASSERT_TRUE(logging::LogStore::DeserializeBatch(LogScheme::kCommand, bytes,
                                                  &copied)
                  .ok());
  ASSERT_EQ(copied.records.size(), moved.records.size());
  for (size_t i = 0; i < copied.records.size(); ++i) {
    ASSERT_EQ(copied.records[i].params.size(),
              moved.records[i].params.size());
    for (size_t v = 0; v < copied.records[i].params.size(); ++v) {
      EXPECT_TRUE(copied.records[i].params[v] == moved.records[i].params[v]);
    }
  }
}

}  // namespace
}  // namespace pacman
