// Tests for the stored-procedure DSL: expressions, builder-derived flow
// dependencies, the interpreter and dynamic access-set extraction.
#include "proc/interpreter.h"

#include <gtest/gtest.h>

#include "proc/expr.h"
#include "proc/procedure.h"
#include "proc/registry.h"
#include "storage/catalog.h"
#include "workload/bank.h"

namespace pacman::proc {
namespace {

TEST(ExprTest, EvalArithmeticAndComparison) {
  std::vector<Value> params = {Value(int64_t{4}), Value(2.5)};
  EvalContext ctx;
  ctx.params = &params;

  EXPECT_EQ(Add(P(0), C(int64_t{3}))->Eval(ctx).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Mul(P(0), P(1))->Eval(ctx).AsDouble(), 10.0);
  EXPECT_EQ(Gt(P(0), C(int64_t{3}))->Eval(ctx).AsInt64(), 1);
  EXPECT_EQ(Lt(P(0), C(int64_t{3}))->Eval(ctx).AsInt64(), 0);
  EXPECT_EQ(Mod(C(int64_t{17}), C(int64_t{5}))->Eval(ctx).AsInt64(), 2);
  EXPECT_EQ(Mod(C(int64_t{-3}), C(int64_t{5}))->Eval(ctx).AsInt64(), 2);
}

TEST(ExprTest, FieldOnAbsentLocalIsNull) {
  std::vector<Value> params;
  std::vector<Row> locals(1);
  std::vector<uint8_t> present = {0};
  EvalContext ctx{&params, &locals, &present};
  EXPECT_TRUE(F(0, 0)->Eval(ctx).is_null());
  EXPECT_EQ(Exists(0)->Eval(ctx).AsInt64(), 0);
  present[0] = 1;
  locals[0] = {Value(int64_t{9})};
  EXPECT_EQ(F(0, 0)->Eval(ctx).AsInt64(), 9);
  EXPECT_EQ(Exists(0)->Eval(ctx).AsInt64(), 1);
}

TEST(ExprTest, PackBuildsCompositeKeys) {
  std::vector<Value> params = {Value(int64_t{3}), Value(int64_t{7})};
  EvalContext ctx;
  ctx.params = &params;
  ExprPtr key = Expr::Pack({P(0), P(1)}, {0, 8});
  EXPECT_EQ(key->EvalKey(ctx), (3u << 8) | 7u);
}

TEST(ExprTest, ResolvableTracksLocals) {
  std::vector<Value> params = {Value(int64_t{1})};
  std::vector<Row> locals(1);
  std::vector<uint8_t> present = {0};
  EvalContext ctx{&params, &locals, &present};
  EXPECT_TRUE(P(0)->Resolvable(ctx));
  EXPECT_FALSE(F(0, 0)->Resolvable(ctx));
  EXPECT_TRUE(Exists(0)->Resolvable(ctx));  // Absence is an answer.
  present[0] = 1;
  locals[0] = {Value(int64_t{2})};
  EXPECT_TRUE(F(0, 0)->Resolvable(ctx));
}

TEST(ExprTest, CollectRefsFindsParamsAndLocals) {
  ExprPtr e = Add(Mul(P(1), F(0, 2)), F(3, 0));
  std::vector<int> params, locals;
  e->CollectRefs(&params, &locals);
  EXPECT_EQ(params, (std::vector<int>{1}));
  std::sort(locals.begin(), locals.end());
  EXPECT_EQ(locals, (std::vector<int>{0, 3}));
}

TEST(BuilderTest, FlowDepsFromDefineUseAndControl) {
  // op0: l0 = read(T, p0)
  // op1: write(T, p0, f(l0))        -- define-use dep on op0
  // op2 guarded by l0: l1 = read(U, p1)   -- control dep on op0
  // op3: write(U, p1, f(l1))        -- define-use dep on op2 (+ guard dep).
  ProcedureBuilder b("p", 2);
  int l0 = b.Read("T", P(0));
  b.Update("T", P(0), l0, {{0, Add(F(l0, 0), C(int64_t{1}))}});
  b.BeginIf(Exists(l0));
  int l1 = b.Read("U", P(1));
  b.Update("U", P(1), l1, {{0, F(l1, 0)}});
  b.EndIf();
  ProcedureDef def = b.Build();

  ASSERT_EQ(def.ops.size(), 4u);
  EXPECT_EQ(def.ops[0].flow_deps, (std::vector<OpIndex>{}));
  EXPECT_EQ(def.ops[1].flow_deps, (std::vector<OpIndex>{0}));
  EXPECT_EQ(def.ops[2].flow_deps, (std::vector<OpIndex>{0}));
  std::vector<OpIndex> d3 = def.ops[3].flow_deps;
  EXPECT_EQ(d3, (std::vector<OpIndex>{0, 2}));
  EXPECT_EQ(def.num_locals, 2);
  EXPECT_EQ(def.ops[2].guard != nullptr, true);
}

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest() : registry_(&catalog_) {
    bank_.CreateTables(&catalog_);
    bank_.RegisterProcedures(&registry_);
    bank_.Load(&catalog_);
  }

  storage::Catalog catalog_;
  ProcedureRegistry registry_;
  workload::Bank bank_{workload::BankConfig{.num_users = 100,
                                            .num_nations = 4,
                                            .single_fraction = 0.0}};
};

TEST_F(InterpreterTest, TransferMovesMoney) {
  ReplayAccess access(&catalog_, InstallMode::kUnlatched);
  access.set_commit_ts(10);
  const ProcedureDef& transfer = registry_.Get(bank_.transfer_id());
  // User 0's spouse is user 1 (single_fraction = 0).
  std::vector<Value> args = {Value(int64_t{0}), Value(100.0)};
  ProcState state(&transfer, &args);
  ASSERT_TRUE(ExecuteAll(&state, &access).ok());

  Row src, dst, sav;
  ASSERT_TRUE(catalog_.GetTable("Current")->Read(0, 10, &src).ok());
  ASSERT_TRUE(catalog_.GetTable("Current")->Read(1, 10, &dst).ok());
  ASSERT_TRUE(catalog_.GetTable("Saving")->Read(0, 10, &sav).ok());
  EXPECT_DOUBLE_EQ(src[0].AsDouble(), 1000.0 - 100.0);
  EXPECT_DOUBLE_EQ(dst[0].AsDouble(), 1001.0 + 100.0);
  EXPECT_DOUBLE_EQ(sav[0].AsDouble(), 5001.0);  // +$1 bonus.
  EXPECT_EQ(access.writes(), 3u);
  EXPECT_EQ(access.reads(), 4u);
}

TEST_F(InterpreterTest, GuardSkipsBody) {
  // Nation deposits below the threshold touch only Current.
  ReplayAccess access(&catalog_, InstallMode::kUnlatched);
  access.set_commit_ts(10);
  const ProcedureDef& deposit = registry_.Get(bank_.deposit_id());
  std::vector<Value> args = {Value(int64_t{5}), Value(1.0), Value(int64_t{2})};
  ProcState state(&deposit, &args);
  ASSERT_TRUE(ExecuteAll(&state, &access).ok());
  EXPECT_EQ(access.writes(), 1u);
  Row stats;
  ASSERT_TRUE(catalog_.GetTable("Stats")->Read(2, 10, &stats).ok());
  EXPECT_EQ(stats[0].AsInt64(), 0);
}

TEST_F(InterpreterTest, GuardTriggersBody) {
  ReplayAccess access(&catalog_, InstallMode::kUnlatched);
  access.set_commit_ts(10);
  const ProcedureDef& deposit = registry_.Get(bank_.deposit_id());
  std::vector<Value> args = {Value(int64_t{5}), Value(20000.0), Value(int64_t{2})};
  ProcState state(&deposit, &args);
  ASSERT_TRUE(ExecuteAll(&state, &access).ok());
  EXPECT_EQ(access.writes(), 3u);
  Row stats;
  ASSERT_TRUE(catalog_.GetTable("Stats")->Read(2, 10, &stats).ok());
  EXPECT_EQ(stats[0].AsInt64(), 1);
}

TEST_F(InterpreterTest, ExecuteOpsSubsetSharesState) {
  // Execute the Transfer ops in two stages, like recovery pieces would.
  ReplayAccess access(&catalog_, InstallMode::kUnlatched);
  access.set_commit_ts(10);
  const ProcedureDef& transfer = registry_.Get(bank_.transfer_id());
  std::vector<Value> args = {Value(int64_t{2}), Value(50.0)};
  ProcState state(&transfer, &args);
  ASSERT_TRUE(ExecuteOps({0}, &state, &access).ok());  // Family read.
  EXPECT_TRUE(state.present[0]);
  ASSERT_TRUE(ExecuteOps({1, 2, 3, 4, 5, 6}, &state, &access).ok());
  Row dst;
  ASSERT_TRUE(catalog_.GetTable("Current")->Read(3, 10, &dst).ok());
  EXPECT_DOUBLE_EQ(dst[0].AsDouble(), 1003.0 + 50.0);
}

TEST_F(InterpreterTest, AccessSetResolvableAfterUpstreamRead) {
  const ProcedureDef& transfer = registry_.Get(bank_.transfer_id());
  std::vector<Value> args = {Value(int64_t{0}), Value(10.0)};
  ProcState state(&transfer, &args);

  // Ops 1-4 (Current accesses) use dst = F(l0, 0): unresolved until the
  // Family read ran.
  std::vector<std::pair<TableId, Key>> accesses;
  EXPECT_FALSE(TryExtractAccessSet({1, 2, 3, 4}, state, &accesses));

  ReplayAccess access(&catalog_, InstallMode::kUnlatched);
  access.set_commit_ts(5);
  ASSERT_TRUE(ExecuteOps({0}, &state, &access).ok());
  ASSERT_TRUE(TryExtractAccessSet({1, 2, 3, 4}, state, &accesses));
  ASSERT_EQ(accesses.size(), 4u);
  const TableId current = catalog_.GetTableId("Current");
  EXPECT_EQ(accesses[0], (std::pair<TableId, Key>{current, 0}));
  EXPECT_EQ(accesses[2], (std::pair<TableId, Key>{current, 1}));
}

TEST_F(InterpreterTest, AccessSetOmitsGuardedOutOps) {
  const ProcedureDef& deposit = registry_.Get(bank_.deposit_id());
  std::vector<Value> args = {Value(int64_t{5}), Value(1.0), Value(int64_t{0})};
  ProcState state(&deposit, &args);
  ReplayAccess access(&catalog_, InstallMode::kUnlatched);
  access.set_commit_ts(5);
  ASSERT_TRUE(ExecuteOps({0}, &state, &access).ok());  // Read Current.
  // Stats ops (indices 4,5) are guarded by the >10000 condition == false.
  std::vector<std::pair<TableId, Key>> accesses;
  ASSERT_TRUE(TryExtractAccessSet({4, 5}, state, &accesses));
  EXPECT_TRUE(accesses.empty());
}

TEST_F(InterpreterTest, RegistryResolvesTablesAndNames) {
  EXPECT_EQ(registry_.size(), 2u);
  EXPECT_NE(registry_.Find("Transfer"), nullptr);
  EXPECT_EQ(registry_.Find("Nope"), nullptr);
  for (const Operation& op : registry_.Get(bank_.transfer_id()).ops) {
    EXPECT_NE(op.table_id, kInvalidTableId);
  }
}

}  // namespace
}  // namespace pacman::proc
