// Tests for the latch primitives (SpinLatch, RwSpinLatch, OccStampLock)
// and the parallel commit path built on them: mutual exclusion, stamp
// semantics, canonical slot-lock ordering (no deadlock on opposed write
// orders), and a >= 8-worker high-contention stress asserting balance-sum
// conservation.
#include "common/spin_latch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "storage/catalog.h"
#include "txn/epoch_manager.h"
#include "txn/transaction_manager.h"

namespace pacman {
namespace {

TEST(SpinLatchTest, MutualExclusion) {
  SpinLatch latch;
  int64_t unguarded = 0;  // Non-atomic on purpose: the latch is the guard.
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&]() {
      for (int n = 0; n < kIncrements; ++n) {
        SpinLatchGuard g(latch);
        unguarded++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(unguarded, int64_t{kThreads} * kIncrements);
}

TEST(SpinLatchTest, TryLockRespectsHolder) {
  SpinLatch latch;
  ASSERT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(RwSpinLatchTest, WritersExcludeEachOtherAndReaders) {
  RwSpinLatch latch;
  // Two counters kept equal under the exclusive lock; a shared-lock reader
  // that ever observes them unequal has seen a torn write section.
  int64_t a = 0, b = 0;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  constexpr int kWriters = 4;
  constexpr int kIncrements = 10000;

  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        latch.LockShared();
        if (a != b) torn.fetch_add(1);
        latch.UnlockShared();
      }
    });
  }
  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&]() {
      for (int n = 0; n < kIncrements; ++n) {
        latch.LockExclusive();
        a++;
        b++;
        latch.UnlockExclusive();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(a, int64_t{kWriters} * kIncrements);
  EXPECT_EQ(b, a);
  EXPECT_EQ(torn.load(), 0u);
}

TEST(OccStampLockTest, PackedStampAndLockBit) {
  EXPECT_EQ(OccStampLock::TsOf(OccStampLock::Pack(42)), 42u);
  EXPECT_FALSE(OccStampLock::IsLocked(OccStampLock::Pack(42)));
  EXPECT_TRUE(OccStampLock::IsLocked(OccStampLock::Pack(42) |
                                     OccStampLock::kLockBit));

  OccStampLock lock;
  EXPECT_EQ(lock.Ts(), 0u);  // No version yet.
  lock.PublishTs(7);
  EXPECT_EQ(lock.Ts(), 7u);
  ASSERT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  // Locking must not disturb the stamp; a validator that holds the lock
  // itself still reads the right version timestamp.
  EXPECT_EQ(OccStampLock::TsOf(lock.Load()), 7u);
  EXPECT_TRUE(OccStampLock::IsLocked(lock.Load()));
  // The abort path: release with the stamp intact.
  lock.Unlock();
  EXPECT_EQ(lock.Load(), OccStampLock::Pack(7));
  // The commit path: publishing a new stamp is also the unlock.
  ASSERT_TRUE(lock.TryLock());
  lock.PublishTs(9);
  EXPECT_EQ(lock.Load(), OccStampLock::Pack(9));
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(OccStampLockTest, MutualExclusionUnderContention) {
  OccStampLock lock;
  int64_t unguarded = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&]() {
      for (int n = 0; n < kIncrements; ++n) {
        lock.Lock();
        unguarded++;
        lock.Unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(unguarded, int64_t{kThreads} * kIncrements);
}

TEST(OccStampLockTest, CanonicalOrderAvoidsDeadlockAcrossSlots) {
  // Many lockers repeatedly take overlapping multi-slot lock sets, always
  // in ascending slot order (the commit path's canonical order). Opposed
  // acquisition orders would deadlock this test almost immediately; the
  // discipline makes it terminate with both counters exact.
  constexpr int kSlots = 4;
  OccStampLock locks[kSlots];
  int64_t counters[kSlots] = {0, 0, 0, 0};
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      uint64_t state = static_cast<uint64_t>(t) * 0x9e3779b97f4a7c15ull | 1;
      for (int n = 0; n < kIterations; ++n) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        // Pick two distinct slots in arbitrary "program order"...
        int a = static_cast<int>(state % kSlots);
        int b = static_cast<int>((state >> 8) % kSlots);
        if (a == b) b = (b + 1) % kSlots;
        // ...then lock in canonical (ascending) order, like Commit does.
        const int lo = std::min(a, b), hi = std::max(a, b);
        locks[lo].Lock();
        locks[hi].Lock();
        counters[a]++;
        counters[b]++;
        locks[hi].Unlock();
        locks[lo].Unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  int64_t total = 0;
  for (int64_t c : counters) total += c;
  EXPECT_EQ(total, int64_t{2} * kThreads * kIterations);
}

// High-contention commit stress on the transaction manager itself (no
// logging, no executor pool in the way): 8 workers transfer between 16 hot
// accounts, every commit conflicting with most others. The balance sum is
// conserved exactly iff validation, the abort path's lock release, and
// install-with-unlock are all correct; a leaked slot lock would hang the
// test instead of passing it.
TEST(ParallelCommitStressTest, EightWorkersConserveBalanceSum) {
  storage::Catalog catalog;
  storage::Table* table = catalog.CreateTable(
      "hot", Schema({{"v", ValueType::kInt64, 0}}),
      storage::IndexType::kHash);
  constexpr int kAccounts = 16;
  constexpr int64_t kInitial = 1000;
  for (int a = 0; a < kAccounts; ++a) {
    table->LoadRow(static_cast<Key>(a), {Value(kInitial)}, 1);
  }
  txn::EpochManager epochs(0);
  txn::TransactionManager tm(&epochs);

  constexpr int kThreads = 8;
  constexpr int kTransfers = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      uint64_t state = static_cast<uint64_t>(t + 1) * 0x2545f4914f6cdd1dull;
      for (int n = 0; n < kTransfers; ++n) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        const Key from = state % kAccounts;
        Key to = (state >> 16) % kAccounts;
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t amount = static_cast<int64_t>(state % 10) + 1;
        while (true) {
          txn::Transaction txn = tm.Begin();
          Row f, g;
          ASSERT_TRUE(txn.Read(table, from, &f).ok());
          ASSERT_TRUE(txn.Read(table, to, &g).ok());
          txn.Write(table, from, {Value(f[0].AsInt64() - amount)});
          txn.Write(table, to, {Value(g[0].AsInt64() + amount)});
          txn::CommitInfo info;
          if (tm.Commit(&txn, &info).ok()) break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  int64_t sum = 0;
  for (int a = 0; a < kAccounts; ++a) {
    Row out;
    ASSERT_TRUE(table->Read(static_cast<Key>(a), kMaxTimestamp, &out).ok());
    sum += out[0].AsInt64();
  }
  EXPECT_EQ(sum, int64_t{kAccounts} * kInitial);
  // No conflict-count assertion here: on a single-core host the scheduler
  // can legitimately run a whole pass without one commit overlapping
  // another. Conservation plus termination (a leaked slot lock would hang
  // the retry loops) are the invariants.
}

// After an 8-worker stress, every slot's stamp word must agree with its
// version chain — the coherence invariant all OCC validation reads.
TEST(ParallelCommitStressTest, StampsMatchNewestVersionAfterStress) {
  storage::Catalog catalog;
  storage::Table* table = catalog.CreateTable(
      "hot", Schema({{"v", ValueType::kInt64, 0}}),
      storage::IndexType::kHash);
  for (int a = 0; a < 8; ++a) {
    table->LoadRow(static_cast<Key>(a), {Value(int64_t{0})}, 1);
  }
  txn::EpochManager epochs(0);
  txn::TransactionManager tm(&epochs);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int n = 0; n < 500; ++n) {
        while (true) {
          txn::Transaction txn = tm.Begin();
          const Key k = static_cast<Key>((t + n) % 8);
          Row out;
          ASSERT_TRUE(txn.Read(table, k, &out).ok());
          txn.Write(table, k, {Value(out[0].AsInt64() + 1)});
          txn::CommitInfo info;
          if (tm.Commit(&txn, &info).ok()) break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // The stamp word of every slot must equal its newest version's
  // begin_ts with the lock bit clear — the invariant OCC validation
  // reads, and the one a lost unlock or skipped publish would break.
  table->ForEachSlot([](storage::TupleSlot* slot) {
    const uint64_t stamp = slot->wlock.Load();
    EXPECT_FALSE(OccStampLock::IsLocked(stamp));
    const storage::Version* v =
        slot->newest.load(std::memory_order_acquire);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(OccStampLock::TsOf(stamp), v->begin_ts);
  });
}

}  // namespace
}  // namespace pacman
