// Property-based tests: randomized stored procedures are fed through the
// static analysis (whose invariants are checked structurally) and through
// full crash/recovery with every scheme (whose recovered states must all
// equal the pre-crash state). This sweeps procedure shapes no hand-written
// workload covers: random flow/data dependencies, foreign-key patterns,
// nested guards.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "analysis/chopping.h"
#include "analysis/dependence.h"
#include "analysis/global_graph.h"
#include "common/random.h"
#include "pacman/database.h"

namespace pacman {
namespace {

constexpr int64_t kKeysPerTable = 64;

struct RandomApp {
  int num_tables = 0;
  std::vector<proc::ProcedureDef> defs;  // Unregistered templates.
  std::vector<int> num_params;
};

// Builds a random application: `num_tables` one-column tables and
// `num_procs` procedures of 3-10 abstract ops. Keys come from parameters
// or from previously read values (foreign-key pattern); all values stay in
// [0, kKeysPerTable) so foreign keys always resolve.
RandomApp MakeRandomApp(Rng* rng, int num_tables, int num_procs) {
  using namespace proc;
  RandomApp app;
  app.num_tables = num_tables;
  for (int pi = 0; pi < num_procs; ++pi) {
    const int nparams = 2 + static_cast<int>(rng->Uniform(0, 2));
    ProcedureBuilder b("proc" + std::to_string(pi), nparams);
    const int nops = 3 + static_cast<int>(rng->Uniform(0, 7));
    std::vector<int> locals;
    int guard_depth = 0;
    for (int oi = 0; oi < nops; ++oi) {
      std::string table =
          "t" + std::to_string(rng->Uniform(0, num_tables - 1));
      // Key: 70% parameter, 30% foreign key from an earlier read.
      ExprPtr key;
      if (!locals.empty() && rng->Bernoulli(0.3)) {
        key = F(locals[rng->Uniform(0, locals.size() - 1)], 0);
      } else {
        key = P(static_cast<int>(rng->Uniform(0, nparams - 1)));
      }
      // Guard regions: open/close with small probability.
      if (guard_depth < 2 && !locals.empty() && rng->Bernoulli(0.2)) {
        b.BeginIf(Gt(F(locals.back(), 0), C(int64_t{kKeysPerTable / 2})));
        guard_depth++;
      }
      if (rng->Bernoulli(0.5)) {
        locals.push_back(b.Read(table, std::move(key)));
      } else if (!locals.empty() && rng->Bernoulli(0.7)) {
        int base = locals[rng->Uniform(0, locals.size() - 1)];
        b.Update(table, std::move(key), base,
                 {{0, Mod(Add(F(base, 0),
                              P(static_cast<int>(
                                  rng->Uniform(0, nparams - 1)))),
                          C(kKeysPerTable))}});
      } else {
        b.WriteRow(table, std::move(key),
                   {Mod(P(static_cast<int>(rng->Uniform(0, nparams - 1))),
                        C(kKeysPerTable))});
      }
      if (guard_depth > 0 && rng->Bernoulli(0.3)) {
        b.EndIf();
        guard_depth--;
      }
    }
    while (guard_depth-- > 0) b.EndIf();
    app.defs.push_back(b.Build());
    app.num_params.push_back(nparams);
  }
  return app;
}

void CreateAndLoadTables(storage::Catalog* catalog, int num_tables) {
  Rng rng(99);
  for (int t = 0; t < num_tables; ++t) {
    storage::Table* table = catalog->CreateTable(
        "t" + std::to_string(t), Schema({{"v", ValueType::kInt64, 0}}),
        t % 2 == 0 ? storage::IndexType::kBPlusTree
                   : storage::IndexType::kHash);
    for (Key k = 0; k < static_cast<Key>(kKeysPerTable); ++k) {
      table->LoadRow(k, {Value(rng.UniformInt(0, kKeysPerTable - 1))}, 1);
    }
  }
}

class AnalysisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisPropertyTest, StaticAnalysisInvariants) {
  Rng rng(GetParam());
  RandomApp app = MakeRandomApp(&rng, 4, 4);

  storage::Catalog catalog;
  proc::ProcedureRegistry registry(&catalog);
  CreateAndLoadTables(&catalog, app.num_tables);
  for (auto& def : app.defs) registry.Register(std::move(def));

  std::vector<analysis::LocalDependencyGraph> ldgs;
  for (const auto& def : registry.procedures()) {
    ldgs.push_back(analysis::BuildLocalGraph(def));
  }

  for (ProcId p = 0; p < registry.size(); ++p) {
    const proc::ProcedureDef& def = registry.Get(p);
    const analysis::LocalDependencyGraph& g = ldgs[p];
    // (1) Slices partition the ops, in ascending program order.
    std::set<OpIndex> seen;
    for (const analysis::Slice& s : g.slices) {
      EXPECT_TRUE(std::is_sorted(s.ops.begin(), s.ops.end()));
      for (OpIndex op : s.ops) EXPECT_TRUE(seen.insert(op).second);
    }
    EXPECT_EQ(seen.size(), def.ops.size());
    // (2) Mutually data-dependent ops share a slice.
    for (OpIndex i = 0; i < def.ops.size(); ++i) {
      for (OpIndex j = i + 1; j < def.ops.size(); ++j) {
        if (analysis::DataDependent(def.ops[i], def.ops[j])) {
          EXPECT_EQ(g.op_to_slice[i], g.op_to_slice[j]);
        }
      }
    }
    // (3) Slice convexity w.r.t. intra-slice flow dependencies.
    for (OpIndex y = 0; y < def.ops.size(); ++y) {
      for (OpIndex x : def.ops[y].flow_deps) {
        if (g.op_to_slice[x] != g.op_to_slice[y]) continue;
        for (OpIndex z = x + 1; z < y; ++z) {
          EXPECT_EQ(g.op_to_slice[z], g.op_to_slice[x])
              << "op between flow-dependent pair escaped the slice";
        }
      }
    }
    // (4) The LDG edge relation matches inter-slice flow deps; the graph
    // is acyclic (checked via DFS).
    std::vector<int> color(g.slices.size(), 0);
    std::function<bool(SliceId)> has_cycle = [&](SliceId s) {
      color[s] = 1;
      for (SliceId c : g.slices[s].children) {
        if (color[c] == 1) return true;
        if (color[c] == 0 && has_cycle(c)) return true;
      }
      color[s] = 2;
      return false;
    };
    for (SliceId s = 0; s < g.slices.size(); ++s) {
      if (color[s] == 0) {
        EXPECT_FALSE(has_cycle(s));
      }
    }
  }

  // GDG invariants.
  analysis::GlobalDependencyGraph gdg =
      analysis::BuildGlobalGraph(ldgs, registry.procedures());
  std::set<std::pair<ProcId, SliceId>> placed;
  for (const analysis::Block& blk : gdg.blocks) {
    for (BlockId dep : blk.deps) EXPECT_LT(dep, blk.id);  // Topological.
    for (const analysis::GlobalSliceRef& ref : blk.member_slices) {
      EXPECT_TRUE(placed.insert({ref.proc, ref.slice}).second);
    }
  }
  for (ProcId p = 0; p < registry.size(); ++p) {
    size_t total = 0;
    for (const analysis::ProcPiece& piece : gdg.proc_pieces[p]) {
      total += piece.ops.size();
    }
    EXPECT_EQ(total, registry.Get(p).ops.size());
  }
  // Every written table lives in exactly one block.
  std::map<std::string, std::set<BlockId>> writers;
  for (ProcId p = 0; p < registry.size(); ++p) {
    for (const analysis::ProcPiece& piece : gdg.proc_pieces[p]) {
      for (OpIndex oi : piece.ops) {
        const proc::Operation& op = registry.Get(p).ops[oi];
        if (op.IsModification()) writers[op.table_name].insert(piece.block);
      }
    }
  }
  for (const auto& [table, blocks] : writers) EXPECT_EQ(blocks.size(), 1u);

  // Chopping invariants on the same app: contiguous serial pieces.
  auto chopped = analysis::BuildChoppingGraphs(registry.procedures());
  for (ProcId p = 0; p < registry.size(); ++p) {
    OpIndex expect = 0;
    for (const analysis::Slice& s : chopped[p].slices) {
      for (OpIndex op : s.ops) EXPECT_EQ(op, expect++);
    }
    EXPECT_EQ(expect, registry.Get(p).ops.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           42, 1234));

class RecoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryPropertyTest, AllSchemesRecoverRandomApps) {
  const uint64_t seed = GetParam();
  struct Case {
    recovery::Scheme scheme;
    logging::LogScheme format;
  };
  const Case cases[] = {
      {recovery::Scheme::kPlr, logging::LogScheme::kPhysical},
      {recovery::Scheme::kLlr, logging::LogScheme::kLogical},
      {recovery::Scheme::kLlrP, logging::LogScheme::kLogical},
      {recovery::Scheme::kClr, logging::LogScheme::kCommand},
      {recovery::Scheme::kClrP, logging::LogScheme::kCommand},
  };
  std::vector<uint64_t> recovered_hashes;
  uint64_t expected = 0;
  for (const Case& c : cases) {
    Rng app_rng(seed);  // Same app for every scheme.
    RandomApp app = MakeRandomApp(&app_rng, 4, 4);
    DatabaseOptions opts;
    opts.scheme = c.format;
    opts.commits_per_epoch = 25;
    opts.epochs_per_batch = 2;
    Database db(opts);
    CreateAndLoadTables(db.catalog(), app.num_tables);
    for (auto& def : app.defs) db.registry()->Register(std::move(def));
    db.FinalizeSchema();
    db.TakeCheckpoint();

    Rng rng(seed * 31 + 7);
    for (int i = 0; i < 200; ++i) {
      ProcId p = static_cast<ProcId>(rng.Uniform(0, app.defs.size() - 1));
      std::vector<Value> params;
      for (int j = 0; j < app.num_params[p]; ++j) {
        params.push_back(Value(rng.UniformInt(0, kKeysPerTable - 1)));
      }
      // Draw the tag unconditionally so the random stream (and thus the
      // transaction sequence) is identical for every scheme.
      bool tagged = rng.Bernoulli(0.15);
      bool adhoc = c.format == logging::LogScheme::kCommand && tagged;
      ASSERT_TRUE(db.ExecuteProcedure(p, params, adhoc).ok());
    }
    const uint64_t pre = db.ContentHash();
    if (expected == 0) expected = pre;
    ASSERT_EQ(pre, expected) << "forward execution diverged across schemes";
    db.Crash();
    recovery::RecoveryOptions ropts;
    ropts.num_threads = 1 + static_cast<uint32_t>(seed % 11);
    db.Recover(c.scheme, ropts);
    EXPECT_EQ(db.ContentHash(), pre)
        << recovery::SchemeName(c.scheme) << " seed " << seed;
    recovered_hashes.push_back(db.ContentHash());
  }
  for (uint64_t h : recovered_hashes) EXPECT_EQ(h, recovered_hashes[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace pacman
