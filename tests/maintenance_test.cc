// Continuous background checkpointing + log truncation
// (maintenance/checkpoint_service.h): covered batch files are deleted and
// superseded checkpoints retired while the database keeps committing, the
// retained log stays bounded as total logged bytes grows, and recovery
// from the truncated state is bit-identical to a run with GC disabled —
// including across process kills landing between a truncation and the
// next checkpoint, and with a torn (killed mid-write) checkpoint meta on
// disk.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "device/file_device.h"
#include "device/simulated_ssd.h"
#include "logging/log_store.h"
#include "maintenance/checkpoint_service.h"
#include "pacman/database.h"
#include "test_util.h"
#include "workload/bank.h"

namespace pacman {
namespace {

namespace fs = std::filesystem;

uint64_t CountFiles(Database* db, const std::string& prefix) {
  uint64_t n = 0;
  for (device::StorageDevice* dev : db->device_ptrs()) {
    n += dev->ListFiles(prefix).size();
  }
  return n;
}

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "pacman_maint_XXXXXX").string();
    char* created = ::mkdtemp(tmpl.data());
    ASSERT_NE(created, nullptr);
    dir_ = created;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  DatabaseOptions SimDbOptions(logging::LogScheme scheme) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    opts.commits_per_epoch = 10;
    opts.epochs_per_batch = 2;
    return opts;
  }

  DatabaseOptions FileDbOptions(logging::LogScheme scheme,
                                const std::string& sub) {
    DatabaseOptions opts = SimDbOptions(scheme);
    opts.device = device::DeviceKind::kFile;
    opts.log_dir = dir_ + "/" + sub;
    return opts;
  }

  void RunTxns(Database* db, int n, uint64_t seed = 1) {
    Rng rng(seed);
    std::vector<Value> params;
    for (int i = 0; i < n; ++i) {
      ProcId proc = bank_.NextTransaction(&rng, &params);
      ASSERT_TRUE(
          db->ExecuteProcedure(proc, params, /*adhoc=*/i % 5 == 0).ok());
    }
    db->AdvanceEpoch();
  }

  void InstallSchemaOnly(Database* db) {
    bank_.CreateTables(db->catalog());
    bank_.RegisterProcedures(db->registry());
    db->FinalizeSchema();
  }

  // A service driven synchronously (RunOnce) — no background thread, so
  // every cycle is deterministic.
  std::unique_ptr<maintenance::CheckpointService> MakeService(
      Database* db, uint32_t retain = 1) {
    maintenance::CheckpointPolicy policy;
    policy.interval_s = 3600;  // Triggers irrelevant: tests call RunOnce.
    policy.retain = retain;
    return std::make_unique<maintenance::CheckpointService>(db, policy,
                                                            nullptr);
  }

  std::string dir_;
  workload::Bank bank_{workload::BankConfig{
      .num_users = 100, .num_nations = 4, .single_fraction = 0.0}};
};

// --- Device RemoveFile contract ------------------------------------------

TEST_F(MaintenanceTest, FileDeviceRemoveFileIsDurableAndIdempotent) {
  device::FileDevice dev({.dir = dir_ + "/dev"});
  ASSERT_TRUE(dev.WriteFile("log_00_000000000001.batch", {1, 2, 3}).ok());
  ASSERT_TRUE(dev.Exists("log_00_000000000001.batch"));
  ASSERT_TRUE(dev.RemoveFile("log_00_000000000001.batch").ok());
  EXPECT_FALSE(dev.Exists("log_00_000000000001.batch"));
  // Idempotent: deleting an absent name is a no-op, not an abort.
  EXPECT_TRUE(dev.RemoveFile("log_00_000000000001.batch").ok());
  EXPECT_TRUE(dev.RemoveFile("never_existed").ok());
  // Durable: a reopened device (fresh directory scan) agrees.
  device::FileDevice reopened({.dir = dir_ + "/dev"});
  EXPECT_FALSE(reopened.Exists("log_00_000000000001.batch"));
}

TEST_F(MaintenanceTest, SimulatedSsdRemoveFileIsIdempotent) {
  device::SimulatedSsd dev(device::SsdConfig::PaperSsd());
  ASSERT_TRUE(dev.WriteFile("a", {1}).ok());
  ASSERT_TRUE(dev.RemoveFile("a").ok());
  EXPECT_FALSE(dev.Exists("a"));
  EXPECT_TRUE(dev.RemoveFile("a").ok());
  EXPECT_TRUE(dev.ListFiles("").empty());
}

// --- Batch coverage headers ----------------------------------------------

TEST_F(MaintenanceTest, ReadBatchCoverageAnswersFromHeader) {
  device::SimulatedSsd dev(device::SsdConfig::PaperSsd());
  logging::LogBatch batch;
  batch.logger_id = 1;
  batch.seq = 4;
  batch.first_epoch = 2;
  batch.last_epoch = 3;
  for (uint64_t cts : {70u, 30u, 50u}) {
    logging::LogRecord r;
    r.commit_ts = cts;
    r.epoch = 2;
    batch.records.push_back(r);
  }
  const std::string name = logging::LogStore::BatchFileName(1, 4);
  ASSERT_TRUE(dev.WriteFile(name, logging::LogStore::SerializeBatch(
                                      logging::LogScheme::kCommand, batch))
                  .ok());

  logging::LogBatch cov;
  ASSERT_TRUE(logging::LogStore::ReadBatchCoverage(
                  logging::LogScheme::kCommand, &dev, name, &cov)
                  .ok());
  EXPECT_EQ(cov.logger_id, 1u);
  EXPECT_EQ(cov.seq, 4u);
  EXPECT_EQ(cov.min_cts, 30u);
  EXPECT_EQ(cov.max_cts, 70u);
  EXPECT_TRUE(cov.records.empty());  // Header-only: no record parse.
  EXPECT_GT(cov.file_bytes, 0u);

  // Full deserialization round-trips the same interval.
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(dev.ReadFile(name, &bytes).ok());
  logging::LogBatch full;
  ASSERT_TRUE(logging::LogStore::DeserializeBatch(
                  logging::LogScheme::kCommand, bytes, &full)
                  .ok());
  EXPECT_EQ(full.min_cts, 30u);
  EXPECT_EQ(full.max_cts, 70u);
  EXPECT_EQ(full.records.size(), 3u);
}

// --- Torn-checkpoint fallback --------------------------------------------

TEST_F(MaintenanceTest, TornMetaFallsBackToPreviousDurableCheckpoint) {
  auto db = std::make_unique<Database>(
      SimDbOptions(logging::LogScheme::kCommand));
  bank_.Install(db.get());
  db->FinalizeSchema();
  const logging::CheckpointMeta first = db->TakeCheckpoint();
  RunTxns(db.get(), 30);
  const logging::CheckpointMeta second = db->TakeCheckpoint();
  logging::Checkpointer* cp = db->checkpointer();

  logging::CheckpointMeta latest;
  ASSERT_TRUE(cp->ReadLatestMeta(&latest).ok());
  EXPECT_EQ(latest.id, second.id);

  // A torn meta (kill mid-write: garbage bytes under a higher id) must
  // not mask the durable checkpoint below it.
  db->device(0)->WriteFile(logging::Checkpointer::MetaFileName(9),
                           std::vector<uint8_t>(24, 0xab));
  ASSERT_TRUE(cp->ReadLatestMeta(&latest).ok());
  EXPECT_EQ(latest.id, second.id);

  // A meta whose stripes are incomplete (kill between stripe writes and
  // meta of a *previous* generation, or stripe loss) is skipped too.
  ASSERT_TRUE(db->device(0)
                  ->RemoveFile(
                      logging::Checkpointer::StripeFileName(second.id, 0, 0))
                  .ok());
  ASSERT_TRUE(cp->ReadLatestMeta(&latest).ok());
  EXPECT_EQ(latest.id, first.id);
}

// --- Checkpoint failure surfaces as Status --------------------------------

// Wrapper device that silently swallows checkpoint stripe writes — the
// "device acknowledged a write it did not keep" failure TakeCheckpoint
// must detect instead of letting truncation delete the only copy.
class StripeDroppingDevice : public device::StorageDevice {
 public:
  explicit StripeDroppingDevice(bool* drop) : drop_(drop) {}
  device::IoResult WriteFile(const std::string& name,
                             std::vector<uint8_t> bytes) override {
    if (*drop_ && name.rfind("ckpt_", 0) == 0 &&
        name.rfind("ckpt_meta_", 0) != 0) {
      return device::IoResult::Ok(0.0);  // Acknowledge and drop.
    }
    return inner_.WriteFile(name, std::move(bytes));
  }
  device::IoResult AppendFile(const std::string& name,
                              const std::vector<uint8_t>& bytes) override {
    return inner_.AppendFile(name, bytes);
  }
  Status ReadFile(const std::string& name,
                  std::vector<uint8_t>* out) const override {
    return inner_.ReadFile(name, out);
  }
  bool Exists(const std::string& name) const override {
    return inner_.Exists(name);
  }
  std::vector<std::string> ListFiles(
      const std::string& prefix) const override {
    return inner_.ListFiles(prefix);
  }
  void RemoveAll() override { inner_.RemoveAll(); }
  device::IoResult RemoveFile(const std::string& name) override {
    return inner_.RemoveFile(name);
  }
  size_t FileSize(const std::string& name) const override {
    return inner_.FileSize(name);
  }
  device::IoResult SyncBarrier() override { return inner_.SyncBarrier(); }
  bool IsPersistent() const override { return inner_.IsPersistent(); }
  double WriteSeconds(size_t bytes) const override {
    return inner_.WriteSeconds(bytes);
  }
  double ReadSeconds(size_t bytes) const override {
    return inner_.ReadSeconds(bytes);
  }
  double FsyncSeconds() const override { return inner_.FsyncSeconds(); }

 private:
  device::SimulatedSsd inner_{device::SsdConfig::PaperSsd()};
  bool* drop_;
};

TEST_F(MaintenanceTest, CheckpointFailsLoudlyWhenStripesDoNotLand) {
  bool drop = false;
  DatabaseOptions opts = SimDbOptions(logging::LogScheme::kCommand);
  opts.device_factory = [&drop](uint32_t) {
    return std::make_unique<StripeDroppingDevice>(&drop);
  };
  auto db = std::make_unique<Database>(opts);
  bank_.Install(db.get());
  db->FinalizeSchema();
  const logging::CheckpointMeta good = db->TakeCheckpoint();
  RunTxns(db.get(), 20);

  drop = true;
  logging::CheckpointMeta meta;
  Status s = db->TryTakeCheckpoint(&meta);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // The failed attempt committed nothing: the previous checkpoint is
  // still the latest durable one.
  logging::CheckpointMeta latest;
  ASSERT_TRUE(db->checkpointer()->ReadLatestMeta(&latest).ok());
  EXPECT_EQ(latest.id, good.id);

  // A service cycle over the failing device counts the failure and
  // deletes no log: nothing may be truncated against a failed checkpoint.
  const uint64_t log_files_before = CountFiles(db.get(), "log_");
  auto service = MakeService(db.get());
  EXPECT_FALSE(service->RunOnce(nullptr).ok());
  EXPECT_EQ(service->stats().checkpoint_failures, 1u);
  EXPECT_EQ(service->stats().batches_deleted, 0u);
  EXPECT_EQ(CountFiles(db.get(), "log_"), log_files_before);

  drop = false;
  ASSERT_TRUE(db->TryTakeCheckpoint(&meta).ok());
  EXPECT_GT(meta.id, good.id);
}

// --- Truncation + retention over live state -------------------------------

TEST_F(MaintenanceTest, ServiceTruncatesCoveredBatchesAndRetiresCheckpoints) {
  auto db = std::make_unique<Database>(
      SimDbOptions(logging::LogScheme::kCommand));
  bank_.Install(db.get());
  db->FinalizeSchema();
  db->TakeCheckpoint();
  RunTxns(db.get(), 120);
  const uint64_t log_files_before = CountFiles(db.get(), "log_");
  ASSERT_GT(log_files_before, 2u);  // Closed batches exist to truncate.

  auto service = MakeService(db.get(), /*retain=*/1);
  maintenance::CheckpointEvent ev;
  ASSERT_TRUE(service->RunOnce(&ev).ok());
  EXPECT_GT(ev.batches_deleted, 0u);
  EXPECT_GT(ev.batch_bytes_deleted, 0u);
  EXPECT_GT(ev.stripes_deleted, 0u);  // Checkpoint id 0 retired.
  EXPECT_LT(CountFiles(db.get(), "log_"), log_files_before);
  // retain=1: exactly one meta file survives, and it is the new one.
  std::vector<uint64_t> ids = db->checkpointer()->ListMetaIds();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], ev.id);

  // The truncated state recovers exactly.
  RunTxns(db.get(), 40, /*seed=*/3);
  const uint64_t hash_before = db->ContentHash();
  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(db->ContentHash(), hash_before);

  // Idle skip: nothing committed since the last cycle — no new
  // checkpoint, no churn.
  auto idle = MakeService(db.get());
  ASSERT_TRUE(idle->RunOnce(&ev).ok());
  const uint64_t after_first = idle->stats().checkpoints;
  ASSERT_TRUE(idle->RunOnce(nullptr).ok());
  EXPECT_EQ(idle->stats().checkpoints, after_first);
}

TEST_F(MaintenanceTest, RetainedLogStaysBoundedAsLoggedBytesGrows) {
  auto db = std::make_unique<Database>(
      SimDbOptions(logging::LogScheme::kCommand));
  bank_.Install(db.get());
  db->FinalizeSchema();
  db->TakeCheckpoint();
  auto service = MakeService(db.get(), /*retain=*/1);

  uint64_t max_files = 0;
  const uint64_t bytes_start = db->log_bytes();
  for (int round = 0; round < 12; ++round) {
    RunTxns(db.get(), 60, /*seed=*/100 + round);
    ASSERT_TRUE(service->RunOnce(nullptr).ok());
    max_files = std::max(max_files, CountFiles(db.get(), "log_"));
  }
  // Total logged bytes grew with uptime; the retained file count did not:
  // it stays within a constant budget (open batches + at most one closed
  // batch per logger between cycles).
  EXPECT_GT(db->log_bytes() - bytes_start, 0u);
  const uint64_t num_loggers = db->log_manager()->num_loggers();
  EXPECT_LE(max_files, 4 * num_loggers + 2);
  EXPECT_GE(service->stats().truncations, 1u);
}

// --- GC/no-GC recovery parity across all five schemes ---------------------

struct SchemeCase {
  logging::LogScheme log;
  recovery::Scheme rec;
};

class MaintenanceParityTest
    : public MaintenanceTest,
      public ::testing::WithParamInterface<SchemeCase> {};

TEST_P(MaintenanceParityTest, RecoveryMatchesNoGcControl) {
  const SchemeCase param = GetParam();
  auto run = [&](bool gc) -> uint64_t {
    auto db = std::make_unique<Database>(SimDbOptions(param.log));
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    auto service = MakeService(db.get());
    for (int round = 0; round < 4; ++round) {
      RunTxns(db.get(), 50, /*seed=*/10 + round);
      if (gc) EXPECT_TRUE(service->RunOnce(nullptr).ok());
    }
    const uint64_t hash_before = db->ContentHash();
    db->Crash();
    recovery::RecoveryOptions ropts;
    ropts.num_threads = 4;
    db->Recover(param.rec, ropts);
    EXPECT_EQ(db->ContentHash(), hash_before);
    return db->ContentHash();
  };
  // Same workload, GC on vs off: recovered content is bit-identical.
  EXPECT_EQ(run(/*gc=*/true), run(/*gc=*/false));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MaintenanceParityTest,
    ::testing::Values(
        SchemeCase{logging::LogScheme::kPhysical, recovery::Scheme::kPlr},
        SchemeCase{logging::LogScheme::kLogical, recovery::Scheme::kLlr},
        SchemeCase{logging::LogScheme::kLogical, recovery::Scheme::kLlrP},
        SchemeCase{logging::LogScheme::kCommand, recovery::Scheme::kClr},
        SchemeCase{logging::LogScheme::kCommand, recovery::Scheme::kClrP}));

// --- Kill -9 interactions (file device) -----------------------------------

TEST_F(MaintenanceTest, KillAfterTruncationRecoversIdenticalState) {
  // Process 1: work, truncate, more work, killed before the next
  // checkpoint — recovery must compose the surviving checkpoint with the
  // post-truncation log suffix.
  uint64_t hash_before = 0;
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand, "gc"));
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 80);
    auto service = MakeService(db.get());
    maintenance::CheckpointEvent ev;
    ASSERT_TRUE(service->RunOnce(&ev).ok());
    ASSERT_GT(ev.batches_deleted, 0u);
    RunTxns(db.get(), 40, /*seed=*/7);
    hash_before = db->ContentHash();
    // Kill: destroyed with no shutdown handshake.
  }
  auto db = std::make_unique<Database>(
      FileDbOptions(logging::LogScheme::kCommand, "gc"));
  ASSERT_TRUE(db->opened_existing_state());
  InstallSchemaOnly(db.get());
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  FullRecoveryResult r =
      db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
  EXPECT_GT(r.log.records_replayed, 0u);
  EXPECT_EQ(db->ContentHash(), hash_before);
}

TEST_F(MaintenanceTest, KillMidCheckpointLeavesTornMetaThatIsIgnored) {
  uint64_t hash_before = 0;
  uint64_t durable_id = 0;
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand, "torn"));
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 60);
    auto service = MakeService(db.get());
    maintenance::CheckpointEvent ev;
    ASSERT_TRUE(service->RunOnce(&ev).ok());
    durable_id = ev.id;
    RunTxns(db.get(), 30, /*seed=*/5);
    hash_before = db->ContentHash();
    // Simulate a kill -9 mid-checkpoint: stripes of the next id partially
    // written, meta torn (truncated garbage).
    db->device(0)->WriteFile(
        logging::Checkpointer::StripeFileName(durable_id + 1, 0, 0),
        std::vector<uint8_t>(128, 0x5a));
    db->device(0)->WriteFile(
        logging::Checkpointer::MetaFileName(durable_id + 1),
        std::vector<uint8_t>(13, 0x5a));
  }
  auto db = std::make_unique<Database>(
      FileDbOptions(logging::LogScheme::kCommand, "torn"));
  InstallSchemaOnly(db.get());
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
  EXPECT_EQ(db->ContentHash(), hash_before);
  // Recovery started from the durable checkpoint, not the torn one.
  logging::CheckpointMeta latest;
  ASSERT_TRUE(db->checkpointer()->ReadLatestMeta(&latest).ok());
  EXPECT_EQ(latest.id, durable_id);
}

TEST_F(MaintenanceTest, DoubleKillWithGcKeepsContinuity) {
  // Kill, recover, truncate again, kill again: batch-seq resumption and
  // checkpoint-id resumption must hold across generations with files
  // disappearing in between.
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  uint64_t h1 = 0, h2 = 0;
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand, "dk"));
    bank_.Install(db.get());
    db->FinalizeSchema();
    db->TakeCheckpoint();
    RunTxns(db.get(), 60);
    auto service = MakeService(db.get());
    ASSERT_TRUE(service->RunOnce(nullptr).ok());
    RunTxns(db.get(), 20, /*seed=*/2);
    h1 = db->ContentHash();
  }
  {
    auto db = std::make_unique<Database>(
        FileDbOptions(logging::LogScheme::kCommand, "dk"));
    InstallSchemaOnly(db.get());
    db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
    ASSERT_EQ(db->ContentHash(), h1);
    RunTxns(db.get(), 40, /*seed=*/3);
    // Second generation truncates too (its service starts from scratch
    // and reads inherited batch coverage from the file headers).
    auto service = MakeService(db.get());
    maintenance::CheckpointEvent ev;
    ASSERT_TRUE(service->RunOnce(&ev).ok());
    EXPECT_GT(ev.batches_deleted, 0u);
    RunTxns(db.get(), 20, /*seed=*/4);
    h2 = db->ContentHash();
  }
  auto db = std::make_unique<Database>(
      FileDbOptions(logging::LogScheme::kCommand, "dk"));
  InstallSchemaOnly(db.get());
  db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
  EXPECT_EQ(db->ContentHash(), h2);
  EXPECT_NE(h2, h1);
}

// --- Background lifecycle -------------------------------------------------

TEST_F(MaintenanceTest, BackgroundServiceRunsWithWorkersAndStopsOnCrash) {
  DatabaseOptions opts = SimDbOptions(logging::LogScheme::kCommand);
  opts.checkpoint_interval_s = 0.02;
  auto db = std::make_unique<Database>(opts);
  bank_.Install(db.get());
  db->FinalizeSchema();
  db->TakeCheckpoint();
  EXPECT_EQ(db->maintenance_service(), nullptr);  // Not started yet.

  db->StartWorkers(2);
  ASSERT_NE(db->maintenance_service(), nullptr);
  EXPECT_TRUE(db->maintenance_service()->running());
  // Commit work and wait for the background loop to take a checkpoint.
  Rng rng(11);
  std::vector<Value> params;
  for (int spin = 0; spin < 400; ++spin) {
    for (int i = 0; i < 10; ++i) {
      ProcId proc = bank_.NextTransaction(&rng, &params);
      ASSERT_TRUE(db->ExecuteProcedure(proc, params).ok());
    }
    db->AdvanceEpoch();
    const maintenance::MaintenanceStats ms = db->maintenance_stats();
    if (ms.checkpoints >= 2 && ms.batches_deleted >= 1) break;
    struct timespec ts = {0, 10 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  EXPECT_GE(db->maintenance_stats().checkpoints, 2u);
  EXPECT_GE(db->maintenance_stats().batches_deleted, 1u);

  const uint64_t hash_before = db->ContentHash();
  db->Crash();  // Stops the service before dropping table state.
  EXPECT_FALSE(db->maintenance_service()->running());
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(db->ContentHash(), hash_before);
  // EnsureWorkers restarts maintenance after recovery; counters persist.
  const uint64_t ckpts = db->maintenance_stats().checkpoints;
  ASSERT_TRUE(db->EnsureWorkers(2));
  EXPECT_TRUE(db->maintenance_service()->running());
  EXPECT_GE(db->maintenance_stats().checkpoints, ckpts);
  db->StopWorkers();
  EXPECT_FALSE(db->maintenance_service()->running());
}

}  // namespace
}  // namespace pacman
