// Tests for tuple version chains, Table MVCC semantics and Catalog.
#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/hash_index.h"

namespace pacman::storage {
namespace {

Schema OneIntSchema() { return Schema({{"v", ValueType::kInt64, 0}}); }
Row IntRow(int64_t v) { return {Value(v)}; }

TEST(HashIndexTest, InsertLookupUpsert) {
  HashIndex idx;
  int a = 0, b = 0;
  EXPECT_TRUE(idx.Insert(1, &a));
  EXPECT_FALSE(idx.Insert(1, &b));
  EXPECT_EQ(idx.Lookup(1), &a);
  EXPECT_EQ(idx.Upsert(1, &b), &a);
  EXPECT_EQ(idx.Lookup(1), &b);
  EXPECT_EQ(idx.Lookup(2), nullptr);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(TupleSlotTest, VisibilityWalksChain) {
  Table t(0, "t", OneIntSchema(), IndexType::kHash);
  t.LoadRow(1, IntRow(10), 5);
  TupleSlot* slot = t.GetSlot(1);
  ASSERT_NE(slot, nullptr);
  Table::InstallVersionLatched(slot, IntRow(20), 8);
  Table::InstallVersionLatched(slot, IntRow(30), 12);

  EXPECT_EQ(slot->VisibleAt(4), nullptr);  // Before load.
  EXPECT_EQ(slot->VisibleAt(5)->data[0].AsInt64(), 10);
  EXPECT_EQ(slot->VisibleAt(7)->data[0].AsInt64(), 10);
  EXPECT_EQ(slot->VisibleAt(8)->data[0].AsInt64(), 20);
  EXPECT_EQ(slot->VisibleAt(11)->data[0].AsInt64(), 20);
  EXPECT_EQ(slot->VisibleAt(kMaxTimestamp)->data[0].AsInt64(), 30);
  // end_ts chain is maintained.
  EXPECT_EQ(slot->VisibleAt(5)->end_ts, 8u);
}

TEST(TableTest, ReadRespectsTimestampsAndTombstones) {
  Table t(0, "t", OneIntSchema(), IndexType::kBPlusTree);
  t.LoadRow(7, IntRow(1), 2);
  TupleSlot* slot = t.GetSlot(7);
  Table::InstallVersionLatched(slot, {}, 6, /*deleted=*/true);

  Row out;
  EXPECT_TRUE(t.Read(7, 3, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 1);
  EXPECT_EQ(t.Read(7, 6, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(t.Read(8, 100, &out).code(), StatusCode::kNotFound);
}

TEST(TableTest, LastWriterWinsDropsStaleWrites) {
  Table t(0, "t", OneIntSchema(), IndexType::kHash);
  TupleSlot* slot = t.GetOrCreateSlot(1);
  Table::InstallLastWriterWins(slot, IntRow(30), 12);
  Table::InstallLastWriterWins(slot, IntRow(20), 8);  // Stale: dropped.
  EXPECT_EQ(slot->VisibleAt(kMaxTimestamp)->data[0].AsInt64(), 30);
  Table::InstallLastWriterWins(slot, IntRow(40), 15);
  EXPECT_EQ(slot->VisibleAt(kMaxTimestamp)->data[0].AsInt64(), 40);
}

TEST(TableTest, ScanFromVisibleOnly) {
  Table t(0, "t", OneIntSchema(), IndexType::kBPlusTree);
  for (Key k = 0; k < 10; ++k) t.LoadRow(k, IntRow(k * 10), 1);
  Table::InstallVersionLatched(t.GetSlot(4), {}, 2, /*deleted=*/true);

  std::vector<Key> keys;
  t.ScanFrom(2, 5, [&](Key k, const Row& row) {
    EXPECT_EQ(row[0].AsInt64(), static_cast<int64_t>(k * 10));
    keys.push_back(k);
    return true;
  });
  // Key 4 is deleted at ts 2, so it is invisible at ts 5.
  EXPECT_EQ(keys, (std::vector<Key>{2, 3, 5, 6, 7, 8, 9}));
}

TEST(TableTest, ContentHashDetectsDifferencesAndIgnoresOrder) {
  Table a(0, "a", OneIntSchema(), IndexType::kHash);
  Table b(1, "b", OneIntSchema(), IndexType::kHash);
  a.LoadRow(1, IntRow(10), 1);
  a.LoadRow(2, IntRow(20), 1);
  b.LoadRow(2, IntRow(20), 1);  // Different load order.
  b.LoadRow(1, IntRow(10), 1);
  EXPECT_EQ(a.ContentHash(5), b.ContentHash(5));

  Table c(2, "c", OneIntSchema(), IndexType::kHash);
  c.LoadRow(1, IntRow(10), 1);
  c.LoadRow(2, IntRow(21), 1);
  EXPECT_NE(a.ContentHash(5), c.ContentHash(5));
}

TEST(TableTest, ContentHashIsTimestampSensitive) {
  Table t(0, "t", OneIntSchema(), IndexType::kHash);
  t.LoadRow(1, IntRow(10), 1);
  uint64_t h1 = t.ContentHash(1);
  Table::InstallVersionLatched(t.GetSlot(1), IntRow(11), 5);
  EXPECT_EQ(t.ContentHash(1), h1);  // Old snapshot unchanged.
  EXPECT_NE(t.ContentHash(5), h1);
}

TEST(TableTest, ResetDropsEverything) {
  Table t(0, "t", OneIntSchema(), IndexType::kBPlusTree);
  t.LoadRow(1, IntRow(10), 1);
  t.Reset();
  EXPECT_EQ(t.NumKeys(), 0u);
  EXPECT_EQ(t.GetSlot(1), nullptr);
  // Usable after reset.
  t.LoadRow(1, IntRow(11), 1);
  Row out;
  ASSERT_TRUE(t.Read(1, 2, &out).ok());
  EXPECT_EQ(out[0].AsInt64(), 11);
}

TEST(CatalogTest, CreateAndResolveTables) {
  Catalog c;
  Table* t1 = c.CreateTable("alpha", OneIntSchema());
  Table* t2 = c.CreateTable("beta", OneIntSchema(), IndexType::kHash);
  EXPECT_EQ(c.NumTables(), 2u);
  EXPECT_EQ(c.GetTable("alpha"), t1);
  EXPECT_EQ(c.GetTable(t2->id()), t2);
  EXPECT_EQ(c.GetTable("gamma"), nullptr);
  EXPECT_EQ(c.GetTableId("beta"), t2->id());
  EXPECT_EQ(c.GetTableId("nope"), kInvalidTableId);
}

TEST(CatalogTest, ContentHashCoversAllTables) {
  Catalog c;
  c.CreateTable("a", OneIntSchema(), IndexType::kHash);
  c.CreateTable("b", OneIntSchema(), IndexType::kHash);
  uint64_t empty = c.ContentHash(1);
  c.GetTable("b")->LoadRow(1, IntRow(5), 1);
  EXPECT_NE(c.ContentHash(1), empty);
  EXPECT_GT(c.ApproxContentBytes(1), 0u);
  c.ResetAllTables();
  EXPECT_EQ(c.ContentHash(1), empty);
}

}  // namespace
}  // namespace pacman::storage
