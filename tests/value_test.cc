// Tests for common/value.h and common/schema.h.
#include "common/value.h"

#include <gtest/gtest.h>

#include "common/schema.h"

namespace pacman {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, Int64RoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.AsInt64(), 42);
  EXPECT_EQ(v.type(), ValueType::kInt64);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(3.25);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.25);
}

TEST(ValueTest, StringRoundTrip) {
  Value v(std::string("hello"));
  EXPECT_EQ(v.AsString(), "hello");
}

TEST(ValueTest, IntPromotesToDoubleInArithmetic) {
  Value a(int64_t{2});
  Value b(1.5);
  EXPECT_DOUBLE_EQ(a.Add(b).AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(a.Sub(b).AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(a.Mul(b).AsDouble(), 3.0);
}

TEST(ValueTest, IntArithmeticStaysInt) {
  Value a(int64_t{7});
  Value b(int64_t{3});
  EXPECT_EQ(a.Add(b).type(), ValueType::kInt64);
  EXPECT_EQ(a.Add(b).AsInt64(), 10);
  EXPECT_EQ(a.Sub(b).AsInt64(), 4);
  EXPECT_EQ(a.Mul(b).AsInt64(), 21);
}

TEST(ValueTest, EqualityAcrossTypes) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // Different types.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value(std::string("a")), Value(std::string("b")));
}

TEST(ValueTest, HashStableAndDiscriminating) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_NE(Value(int64_t{5}).Hash(), Value(int64_t{6}).Hash());
  EXPECT_NE(Value(int64_t{5}).Hash(), Value(5.0).Hash());
  EXPECT_EQ(Value(std::string("x")).Hash(), Value(std::string("x")).Hash());
}

TEST(ValueTest, RowHashOrderSensitive) {
  Row r1 = {Value(int64_t{1}), Value(int64_t{2})};
  Row r2 = {Value(int64_t{2}), Value(int64_t{1})};
  EXPECT_NE(HashRow(r1), HashRow(r2));
  EXPECT_EQ(HashRow(r1), HashRow({Value(int64_t{1}), Value(int64_t{2})}));
}

TEST(SchemaTest, RowByteSizeCountsFixedWidths) {
  Schema s({{"a", ValueType::kInt64, 0},
            {"b", ValueType::kDouble, 0},
            {"c", ValueType::kString, 24}});
  EXPECT_EQ(s.RowByteSize(), 8u + 8u + 24u);
  EXPECT_EQ(s.NumColumns(), 3u);
  EXPECT_EQ(s.ColumnIndex("b"), 1);
  EXPECT_EQ(s.ColumnIndex("nope"), -1);
}

TEST(SchemaTest, ValidateChecksArityAndTypes) {
  Schema s({{"a", ValueType::kInt64, 0}, {"b", ValueType::kString, 8}});
  EXPECT_TRUE(s.Validate({Value(int64_t{1}), Value(std::string("x"))}));
  EXPECT_TRUE(s.Validate({Value::Null(), Value::Null()}));  // Nulls OK.
  EXPECT_FALSE(s.Validate({Value(int64_t{1})}));            // Arity.
  EXPECT_FALSE(s.Validate({Value(1.0), Value(std::string("x"))}));
}

}  // namespace
}  // namespace pacman
