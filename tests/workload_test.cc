// Workload-level tests: schema/loader consistency, generator bounds and
// application-semantic invariants (conservation laws) under concurrent
// execution and across crash/recovery.
#include <gtest/gtest.h>

#include <set>

#include "pacman/database.h"
#include "workload/bank.h"
#include "workload/smallbank.h"
#include "workload/tpcc.h"

namespace pacman {
namespace {

double SumColumn(storage::Table* table, int col, Timestamp ts) {
  double sum = 0.0;
  table->ForEachSlot([&](storage::TupleSlot* slot) {
    const storage::Version* v = slot->VisibleAt(ts);
    if (v != nullptr && !v->deleted) sum += v->data[col].AsDouble();
  });
  return sum;
}

TEST(BankWorkloadTest, LoadPopulatesAllTables) {
  storage::Catalog catalog;
  workload::Bank bank({.num_users = 50, .num_nations = 4,
                       .single_fraction = 0.2});
  bank.CreateTables(&catalog);
  bank.Load(&catalog);
  EXPECT_EQ(catalog.GetTable("Family")->NumKeys(), 50u);
  EXPECT_EQ(catalog.GetTable("Current")->NumKeys(), 50u);
  EXPECT_EQ(catalog.GetTable("Saving")->NumKeys(), 50u);
  EXPECT_EQ(catalog.GetTable("Stats")->NumKeys(), 4u);
}

TEST(BankWorkloadTest, SpousePairingIsSymmetricOrSingle) {
  storage::Catalog catalog;
  workload::Bank bank({.num_users = 100, .num_nations = 4,
                       .single_fraction = 0.3});
  bank.CreateTables(&catalog);
  bank.Load(&catalog);
  storage::Table* family = catalog.GetTable("Family");
  for (Key u = 0; u < 100; ++u) {
    Row row;
    ASSERT_TRUE(family->Read(u, 2, &row).ok());
    int64_t spouse = row[0].AsInt64();
    if (spouse >= 0) {
      EXPECT_EQ(static_cast<Key>(spouse), u ^ 1ull);
    }
  }
}

TEST(BankWorkloadTest, TransferConservesCurrentTotal) {
  // Transfers move money between Current accounts: the Current total is
  // invariant (deposits change it, so run transfers only).
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  workload::Bank bank({.num_users = 100, .num_nations = 4,
                       .single_fraction = 0.0});
  bank.CreateTables(db.catalog());
  bank.RegisterProcedures(db.registry());
  bank.Load(db.catalog());
  db.FinalizeSchema();

  storage::Table* current = db.catalog()->GetTable("Current");
  const double before =
      SumColumn(current, 0, db.txn_manager()->LastCommitted());
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> params = {
        Value(rng.UniformInt(0, 99)),
        Value(static_cast<double>(rng.UniformInt(1, 50)))};
    ASSERT_TRUE(db.ExecuteProcedure(bank.transfer_id(), params).ok());
  }
  const double after =
      SumColumn(current, 0, db.txn_manager()->LastCommitted());
  EXPECT_NEAR(before, after, 1e-6);
}

TEST(SmallbankWorkloadTest, SendPaymentConservesCheckingTotal) {
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  workload::Smallbank sb(
      {.num_accounts = 100, .hotspot_fraction = 0.5, .hotspot_size = 10});
  sb.CreateTables(db.catalog());
  sb.RegisterProcedures(db.registry());
  sb.Load(db.catalog());
  db.FinalizeSchema();

  storage::Table* checking = db.catalog()->GetTable("Checking");
  const double before =
      SumColumn(checking, 0, db.txn_manager()->LastCommitted());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    int64_t a = rng.UniformInt(0, 99);
    int64_t b = (a + 1 + rng.UniformInt(0, 97)) % 100;
    std::vector<Value> params = {
        Value(a), Value(b), Value(static_cast<double>(rng.UniformInt(1, 20)))};
    ASSERT_TRUE(db.ExecuteProcedure(sb.send_payment_id(), params).ok());
  }
  EXPECT_NEAR(before,
              SumColumn(checking, 0, db.txn_manager()->LastCommitted()),
              1e-6);
}

TEST(SmallbankWorkloadTest, AmalgamateMovesEverything) {
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  workload::Smallbank sb(
      {.num_accounts = 10, .hotspot_fraction = 0.0, .hotspot_size = 1});
  sb.CreateTables(db.catalog());
  sb.RegisterProcedures(db.registry());
  sb.Load(db.catalog());
  db.FinalizeSchema();

  std::vector<Value> params = {Value(int64_t{3}), Value(int64_t{7})};
  ASSERT_TRUE(db.ExecuteProcedure(sb.amalgamate_id(), params).ok());
  Timestamp now = db.txn_manager()->LastCommitted();
  Row sav, chk;
  ASSERT_TRUE(db.catalog()->GetTable("Savings")->Read(3, now, &sav).ok());
  ASSERT_TRUE(db.catalog()->GetTable("Checking")->Read(3, now, &chk).ok());
  EXPECT_DOUBLE_EQ(sav[0].AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(chk[0].AsDouble(), 0.0);
}

TEST(SmallbankWorkloadTest, BalanceIsReadOnly) {
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  workload::Smallbank sb(
      {.num_accounts = 10, .hotspot_fraction = 0.0, .hotspot_size = 1});
  sb.CreateTables(db.catalog());
  sb.RegisterProcedures(db.registry());
  sb.Load(db.catalog());
  db.FinalizeSchema();
  const uint64_t before = db.ContentHash();
  ASSERT_TRUE(
      db.ExecuteProcedure(sb.balance_id(), {Value(int64_t{5})}).ok());
  EXPECT_EQ(db.ContentHash(), before);
  EXPECT_EQ(db.log_manager()->total_bytes(), 0u);  // Not logged.
}

TEST(SmallbankWorkloadTest, GeneratorRespectsMixAndBounds) {
  workload::Smallbank sb(
      {.num_accounts = 1000, .hotspot_fraction = 0.25, .hotspot_size = 10});
  storage::Catalog catalog;
  proc::ProcedureRegistry registry(&catalog);
  sb.CreateTables(&catalog);
  sb.RegisterProcedures(&registry);
  Rng rng(5);
  std::vector<Value> params;
  int counts[6] = {0};
  for (int i = 0; i < 5000; ++i) {
    ProcId p = sb.NextTransaction(&rng, &params);
    ASSERT_LT(p, registry.size());
    counts[p]++;
    for (const Value& v : params) {
      if (v.type() == ValueType::kInt64) {
        EXPECT_GE(v.AsInt64(), 0);
        EXPECT_LT(v.AsInt64(), 1000);
      }
    }
  }
  EXPECT_GT(counts[sb.deposit_checking_id()], 0);
  EXPECT_GT(counts[sb.send_payment_id()], 0);
  EXPECT_GT(counts[sb.amalgamate_id()], 0);
  EXPECT_GT(counts[sb.write_check_id()], 0);
  EXPECT_GT(counts[sb.transact_savings_id()], 0);
  EXPECT_EQ(counts[sb.balance_id()], 0);  // Not in the logged mix.
}

class TpccWorkloadTest : public ::testing::Test {
 protected:
  workload::TpccConfig SmallConfig(bool inserts = false) {
    workload::TpccConfig c;
    c.num_warehouses = 2;
    c.districts_per_warehouse = 3;
    c.customers_per_district = 20;
    c.num_items = 50;
    c.orders_per_district = 8;
    c.enable_inserts = inserts;
    return c;
  }
};

TEST_F(TpccWorkloadTest, LoadCountsMatchConfig) {
  storage::Catalog catalog;
  workload::Tpcc tpcc(SmallConfig());
  tpcc.CreateTables(&catalog);
  tpcc.Load(&catalog);
  EXPECT_EQ(catalog.GetTable("WAREHOUSE")->NumKeys(), 2u);
  EXPECT_EQ(catalog.GetTable("DISTRICT")->NumKeys(), 6u);
  EXPECT_EQ(catalog.GetTable("CUSTOMER")->NumKeys(), 2u * 3 * 20);
  EXPECT_EQ(catalog.GetTable("ITEM")->NumKeys(), 50u);
  EXPECT_EQ(catalog.GetTable("STOCK")->NumKeys(), 2u * 50);
  EXPECT_EQ(catalog.GetTable("ORDERS")->NumKeys(), 2u * 3 * 8);
  EXPECT_EQ(catalog.GetTable("ORDER_LINE")->NumKeys(), 2u * 3 * 8 * 10);
}

TEST_F(TpccWorkloadTest, KeyPackingIsInjectivePerTable) {
  // Keys only need to be unique within their own table's key space.
  std::set<Key> district, customer, order, order_line;
  for (int64_t w = 0; w < 4; ++w) {
    for (int64_t d = 0; d < 10; ++d) {
      EXPECT_TRUE(district.insert(workload::Tpcc::DistrictKey(w, d)).second);
      for (int64_t c = 0; c < 30; ++c) {
        EXPECT_TRUE(
            customer.insert(workload::Tpcc::CustomerKey(w, d, c)).second);
      }
      for (int64_t o = 0; o < 8; ++o) {
        EXPECT_TRUE(order.insert(workload::Tpcc::OrderKey(w, d, o)).second);
        for (int64_t n = 0; n < 10; ++n) {
          EXPECT_TRUE(
              order_line.insert(workload::Tpcc::OrderLineKey(w, d, o, n))
                  .second);
        }
      }
    }
  }
}

TEST_F(TpccWorkloadTest, NewOrderAdvancesDistrictAndUpdatesStock) {
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  workload::Tpcc tpcc(SmallConfig());
  tpcc.CreateTables(db.catalog());
  tpcc.RegisterProcedures(db.registry());
  tpcc.Load(db.catalog());
  db.FinalizeSchema();

  std::vector<Value> params = {Value(int64_t{0}), Value(int64_t{1}),
                               Value(int64_t{2})};
  for (int64_t k = 0; k < 10; ++k) params.push_back(Value(k));  // Items.
  for (int64_t k = 0; k < 10; ++k) params.push_back(Value(int64_t{2}));

  Timestamp before_ts = db.txn_manager()->LastCommitted();
  Row district_before, stock_before;
  Key dkey = workload::Tpcc::DistrictKey(0, 1);
  Key skey = workload::Tpcc::StockKey(0, 3);
  ASSERT_TRUE(
      db.catalog()->GetTable("DISTRICT")->Read(dkey, before_ts,
                                               &district_before).ok());
  ASSERT_TRUE(db.catalog()
                  ->GetTable("STOCK")
                  ->Read(skey, before_ts, &stock_before)
                  .ok());

  ASSERT_TRUE(db.ExecuteProcedure(tpcc.new_order_id(), params).ok());
  Timestamp after_ts = db.txn_manager()->LastCommitted();
  Row district_after, stock_after;
  ASSERT_TRUE(db.catalog()
                  ->GetTable("DISTRICT")
                  ->Read(dkey, after_ts, &district_after)
                  .ok());
  ASSERT_TRUE(db.catalog()
                  ->GetTable("STOCK")
                  ->Read(skey, after_ts, &stock_after)
                  .ok());
  EXPECT_EQ(district_after[2].AsInt64(),
            district_before[2].AsInt64() + 1);
  EXPECT_EQ(stock_after[0].AsInt64(), stock_before[0].AsInt64() - 2);
  EXPECT_EQ(stock_after[2].AsInt64(), stock_before[2].AsInt64() + 1);
}

TEST_F(TpccWorkloadTest, PaymentUpdatesYtdChain) {
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  workload::Tpcc tpcc(SmallConfig());
  tpcc.CreateTables(db.catalog());
  tpcc.RegisterProcedures(db.registry());
  tpcc.Load(db.catalog());
  db.FinalizeSchema();

  std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{0}),
                               Value(int64_t{5}), Value(100.5)};
  Timestamp t0 = db.txn_manager()->LastCommitted();
  Row w0, c0;
  ASSERT_TRUE(db.catalog()->GetTable("WAREHOUSE")->Read(1, t0, &w0).ok());
  Key ckey = workload::Tpcc::CustomerKey(1, 0, 5);
  ASSERT_TRUE(db.catalog()->GetTable("CUSTOMER")->Read(ckey, t0, &c0).ok());
  ASSERT_TRUE(db.ExecuteProcedure(tpcc.payment_id(), params).ok());
  Timestamp t1 = db.txn_manager()->LastCommitted();
  Row w1, c1;
  ASSERT_TRUE(db.catalog()->GetTable("WAREHOUSE")->Read(1, t1, &w1).ok());
  ASSERT_TRUE(db.catalog()->GetTable("CUSTOMER")->Read(ckey, t1, &c1).ok());
  EXPECT_NEAR(w1[2].AsDouble(), w0[2].AsDouble() + 100.5, 1e-9);
  EXPECT_NEAR(c1[0].AsDouble(), c0[0].AsDouble() - 100.5, 1e-9);
  EXPECT_EQ(c1[2].AsInt64(), c0[2].AsInt64() + 1);
}

TEST_F(TpccWorkloadTest, InsertVariantCreatesAndConsumesNewOrders) {
  DatabaseOptions opts;
  opts.scheme = logging::LogScheme::kCommand;
  Database db(opts);
  workload::Tpcc tpcc(SmallConfig(/*inserts=*/true));
  tpcc.CreateTables(db.catalog());
  tpcc.RegisterProcedures(db.registry());
  tpcc.Load(db.catalog());
  db.FinalizeSchema();
  storage::Table* new_order = db.catalog()->GetTable("NEW_ORDER");
  ASSERT_NE(new_order, nullptr);

  std::vector<Value> params = {Value(int64_t{0}), Value(int64_t{0}),
                               Value(int64_t{2})};
  for (int64_t k = 0; k < 10; ++k) params.push_back(Value(k));
  for (int64_t k = 0; k < 10; ++k) params.push_back(Value(int64_t{1}));
  ASSERT_TRUE(db.ExecuteProcedure(tpcc.new_order_id(), params).ok());
  Timestamp t1 = db.txn_manager()->LastCommitted();
  EXPECT_EQ(new_order->VisibleCount(t1), 1u);

  // Deliver order slot 0 of warehouse 0 (the slot NewOrder just used:
  // next_o_id was preloaded at orders_per_district => slot 0).
  std::vector<Value> dparams = {Value(int64_t{0}), Value(int64_t{0}),
                                Value(int64_t{7})};
  ASSERT_TRUE(db.ExecuteProcedure(tpcc.delivery_id(), dparams).ok());
  Timestamp t2 = db.txn_manager()->LastCommitted();
  EXPECT_EQ(new_order->VisibleCount(t2), 0u);  // Consumed (tombstoned).
  EXPECT_EQ(new_order->VisibleCount(t1), 1u);  // Old snapshot intact.
}

TEST_F(TpccWorkloadTest, GeneratorBoundsAndMix) {
  workload::Tpcc tpcc(SmallConfig());
  storage::Catalog catalog;
  proc::ProcedureRegistry registry(&catalog);
  tpcc.CreateTables(&catalog);
  tpcc.RegisterProcedures(&registry);
  Rng rng(11);
  std::vector<Value> params;
  int counts[5] = {0};
  for (int i = 0; i < 5000; ++i) {
    ProcId p = tpcc.NextTransaction(&rng, &params);
    counts[p]++;
    if (p == tpcc.new_order_id()) {
      ASSERT_EQ(params.size(), 23u);
      std::set<int64_t> items;
      for (int k = 3; k < 13; ++k) {
        EXPECT_TRUE(items.insert(params[k].AsInt64()).second)
            << "duplicate item in order";
        EXPECT_LT(params[k].AsInt64(), 50);
      }
    }
  }
  // Mix roughly follows the configured percentages.
  EXPECT_NEAR(counts[tpcc.new_order_id()] / 5000.0, 0.45, 0.05);
  EXPECT_NEAR(counts[tpcc.payment_id()] / 5000.0, 0.43, 0.05);
  EXPECT_GT(counts[tpcc.delivery_id()], 0);
  EXPECT_GT(counts[tpcc.stock_level_id()], 0);
  EXPECT_GT(counts[tpcc.order_status_id()], 0);
}

TEST_F(TpccWorkloadTest, InsertVariantRecoversUnderAllSchemes) {
  struct Case {
    recovery::Scheme scheme;
    logging::LogScheme format;
  };
  const Case cases[] = {
      {recovery::Scheme::kPlr, logging::LogScheme::kPhysical},
      {recovery::Scheme::kLlr, logging::LogScheme::kLogical},
      {recovery::Scheme::kLlrP, logging::LogScheme::kLogical},
      {recovery::Scheme::kClr, logging::LogScheme::kCommand},
      {recovery::Scheme::kClrP, logging::LogScheme::kCommand},
  };
  for (const Case& c : cases) {
    DatabaseOptions opts;
    opts.scheme = c.format;
    opts.commits_per_epoch = 20;
    Database db(opts);
    workload::Tpcc tpcc(SmallConfig(/*inserts=*/true));
    tpcc.CreateTables(db.catalog());
    tpcc.RegisterProcedures(db.registry());
    tpcc.Load(db.catalog());
    db.FinalizeSchema();
    db.TakeCheckpoint();
    Rng rng(13);
    std::vector<Value> params;
    for (int i = 0; i < 150; ++i) {
      ProcId p = tpcc.NextTransaction(&rng, &params);
      ASSERT_TRUE(db.ExecuteProcedure(p, params).ok());
    }
    const uint64_t pre = db.ContentHash();
    db.Crash();
    recovery::RecoveryOptions ropts;
    ropts.num_threads = 8;
    db.Recover(c.scheme, ropts);
    EXPECT_EQ(db.ContentHash(), pre)
        << recovery::SchemeName(c.scheme) << " insert-variant mismatch";
  }
}

}  // namespace
}  // namespace pacman
