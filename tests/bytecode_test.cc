// Compiled-execution parity suite: the bytecode VM must be bit-identical
// to the expression-tree interpreter — same emitted values, same final
// table state — on forward processing and on replay under every recovery
// scheme, plus arena reuse semantics and the unfinalized-procedure death
// check.
#include "proc/bytecode.h"

#include <gtest/gtest.h>

#include "pacman/database.h"
#include "proc/compiler.h"
#include "proc/exec_arena.h"
#include "proc/interpreter.h"
#include "workload/bank.h"
#include "workload/tpcc.h"

namespace pacman {
namespace {

using logging::LogScheme;
using recovery::RecoveryOptions;
using recovery::Scheme;

LogScheme SchemeLogFormat(Scheme s) {
  switch (s) {
    case Scheme::kPlr:
      return LogScheme::kPhysical;
    case Scheme::kLlr:
    case Scheme::kLlrP:
      return LogScheme::kLogical;
    case Scheme::kClr:
    case Scheme::kClrP:
      return LogScheme::kCommand;
  }
  return LogScheme::kCommand;
}

// Bit-exact value equality: type and payload, no numeric promotion (the
// parity claim is "identical results", not "equivalent results").
bool SameValue(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble:
      return a.AsDouble() == b.AsDouble();
    case ValueType::kString:
      return a.AsStringView() == b.AsStringView();
  }
  return false;
}

std::unique_ptr<Database> MakeBankDb(bool compiled,
                                     LogScheme scheme = LogScheme::kCommand,
                                     workload::Bank* bank = nullptr) {
  DatabaseOptions opts;
  opts.scheme = scheme;
  opts.compiled_procedures = compiled;
  opts.commits_per_epoch = 25;
  opts.epochs_per_batch = 2;
  auto db = std::make_unique<Database>(opts);
  static workload::Bank local_bank{workload::BankConfig{
      .num_users = 300, .num_nations = 8, .single_fraction = 0.2}};
  workload::Bank* b = bank != nullptr ? bank : &local_bank;
  b->CreateTables(db->catalog());
  b->RegisterProcedures(db->registry());
  b->Load(db->catalog());
  db->FinalizeSchema();
  return db;
}

// Every bank procedure, both engines, transaction by transaction: emitted
// values must match exactly and the final table state must hash equal.
TEST(BytecodeParityTest, BankForwardEmittedValuesAndState) {
  workload::Bank bank{workload::BankConfig{
      .num_users = 300, .num_nations = 8, .single_fraction = 0.2}};
  auto interp = MakeBankDb(/*compiled=*/false, LogScheme::kCommand, &bank);
  auto vm = MakeBankDb(/*compiled=*/true, LogScheme::kCommand, &bank);

  Rng rng(7);
  std::vector<Value> params;
  for (int i = 0; i < 400; ++i) {
    ProcId proc = bank.NextTransaction(&rng, &params);
    TxnResult a = interp->Execute(proc, params);
    TxnResult b = vm->Execute(proc, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.values.size(), b.values.size()) << "txn " << i;
    for (size_t v = 0; v < a.values.size(); ++v) {
      EXPECT_TRUE(SameValue(a.values[v], b.values[v]))
          << "txn " << i << " value " << v << ": "
          << a.values[v].ToString() << " vs " << b.values[v].ToString();
    }
  }
  EXPECT_EQ(interp->ContentHash(), vm->ContentHash());
}

// Directed branch coverage: Transfer with a married source (guard taken),
// a single source (guard skipped -> Null results), and Deposit below and
// above the savings-bonus threshold.
TEST(BytecodeParityTest, BankGuardBranchesMatch) {
  workload::Bank bank{workload::BankConfig{
      .num_users = 10, .num_nations = 2, .single_fraction = 0.0}};
  workload::Bank single_bank{workload::BankConfig{
      .num_users = 10, .num_nations = 2, .single_fraction = 1.0}};
  for (workload::Bank* b : {&bank, &single_bank}) {
    auto interp = MakeBankDb(false, LogScheme::kCommand, b);
    auto vm = MakeBankDb(true, LogScheme::kCommand, b);
    const std::vector<std::pair<ProcId, std::vector<Value>>> cases = {
        {b->transfer_id(), {Value(int64_t{0}), Value(5.0)}},
        {b->deposit_id(),
         {Value(int64_t{1}), Value(3.0), Value(int64_t{0})}},
        {b->deposit_id(),
         {Value(int64_t{1}), Value(11000.0), Value(int64_t{1})}},
    };
    for (const auto& [proc, params] : cases) {
      TxnResult a = interp->Execute(proc, params);
      TxnResult r = vm->Execute(proc, params);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(a.values.size(), r.values.size());
      for (size_t v = 0; v < a.values.size(); ++v) {
        EXPECT_TRUE(SameValue(a.values[v], r.values[v]));
      }
    }
    EXPECT_EQ(interp->ContentHash(), vm->ContentHash());
  }
}

// TPC-C: every procedure of the full mix, both engines.
TEST(BytecodeParityTest, TpccForwardEmittedValuesAndState) {
  workload::TpccConfig config;
  config.num_warehouses = 2;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 30;
  config.num_items = 100;
  config.orders_per_district = 8;

  auto make = [&](bool compiled) {
    DatabaseOptions opts;
    opts.scheme = LogScheme::kCommand;
    opts.compiled_procedures = compiled;
    auto db = std::make_unique<Database>(opts);
    auto tpcc = std::make_shared<workload::Tpcc>(config);
    tpcc->Install(db.get());
    db->FinalizeSchema();
    return std::make_pair(std::move(db), tpcc);
  };
  auto [interp, tpcc_a] = make(false);
  auto [vm, tpcc_b] = make(true);

  Rng rng(11);
  std::vector<Value> params;
  for (int i = 0; i < 300; ++i) {
    ProcId proc = tpcc_a->NextTransaction(&rng, &params);
    TxnResult a = interp->Execute(proc, params);
    TxnResult b = vm->Execute(proc, params);
    ASSERT_EQ(a.ok(), b.ok()) << "txn " << i;
    ASSERT_EQ(a.values.size(), b.values.size()) << "txn " << i;
    for (size_t v = 0; v < a.values.size(); ++v) {
      EXPECT_TRUE(SameValue(a.values[v], b.values[v]))
          << "txn " << i << " value " << v;
    }
  }
  EXPECT_EQ(interp->ContentHash(), vm->ContentHash());
}

// All five recovery schemes restore the exact pre-crash state with
// compiled execution on; CLR/CLR-P additionally must agree with the
// interpreter-replayed state (only they re-execute procedures).
TEST(BytecodeParityTest, ReplayParityAcrossAllSchemes) {
  for (Scheme scheme : {Scheme::kPlr, Scheme::kLlr, Scheme::kLlrP,
                        Scheme::kClr, Scheme::kClrP}) {
    workload::Bank bank{workload::BankConfig{
        .num_users = 300, .num_nations = 8, .single_fraction = 0.2}};
    auto interp = MakeBankDb(false, SchemeLogFormat(scheme), &bank);
    auto vm = MakeBankDb(true, SchemeLogFormat(scheme), &bank);
    for (Database* db : {interp.get(), vm.get()}) {
      db->TakeCheckpoint();
      Rng rng(5);
      std::vector<Value> params;
      for (int i = 0; i < 200; ++i) {
        ProcId proc = bank.NextTransaction(&rng, &params);
        ASSERT_TRUE(db->ExecuteProcedure(proc, params).ok());
      }
    }
    const uint64_t pre_interp = interp->ContentHash();
    const uint64_t pre_vm = vm->ContentHash();
    ASSERT_EQ(pre_interp, pre_vm) << "scheme " << static_cast<int>(scheme);

    RecoveryOptions ropts;
    ropts.num_threads = 4;
    for (Database* db : {interp.get(), vm.get()}) {
      db->Crash();
      db->Recover(scheme, ropts);
      EXPECT_EQ(db->ContentHash(), pre_interp)
          << "scheme " << static_cast<int>(scheme);
    }
  }
}

// Arena reuse: Bind() resets presence flags between transactions but
// keeps row/register capacity, so steady-state execution does not grow.
TEST(ExecArenaTest, BindResetsPresenceAndKeepsCapacity) {
  workload::Bank bank{workload::BankConfig{
      .num_users = 20, .num_nations = 2, .single_fraction = 0.0}};
  auto db = MakeBankDb(true, LogScheme::kCommand, &bank);
  const proc::CompiledProgram& prog =
      db->programs().Get(bank.transfer_id());

  proc::ExecArena arena;
  const std::vector<Value> params = {Value(int64_t{0}), Value(5.0)};
  proc::VmState st = arena.Bind(prog, &params);
  for (uint16_t l = 0; l < prog.num_locals; ++l) {
    EXPECT_EQ(st.present[l], 0);
  }

  proc::ReplayAccess access(db->catalog(), proc::InstallMode::kUnlatched);
  access.set_commit_ts(1);
  ASSERT_TRUE(proc::VmExecuteAll(&st, &access).ok());
  bool any_present = false;
  for (uint16_t l = 0; l < prog.num_locals; ++l) {
    any_present = any_present || st.present[l] != 0;
  }
  EXPECT_TRUE(any_present);
  std::vector<size_t> caps;
  for (uint16_t l = 0; l < prog.num_locals; ++l) {
    caps.push_back(st.locals[l].capacity());
  }

  // Rebind: presence cleared, the rows' heap capacity survives.
  proc::VmState st2 = arena.Bind(prog, &params);
  for (uint16_t l = 0; l < prog.num_locals; ++l) {
    EXPECT_EQ(st2.present[l], 0);
    EXPECT_EQ(st2.locals[l].capacity(), caps[l]);
  }
}

// Shared-locals binding (CLR-P): VmTxnLocals carries the per-transaction
// rows across piece executions; BindShared points the state at them.
TEST(ExecArenaTest, BindSharedUsesTxnLocals) {
  workload::Bank bank{workload::BankConfig{
      .num_users = 20, .num_nations = 2, .single_fraction = 0.0}};
  auto db = MakeBankDb(true, LogScheme::kCommand, &bank);
  const proc::CompiledProgram& prog =
      db->programs().Get(bank.transfer_id());

  proc::VmTxnLocals locals;
  locals.Reset(prog.num_locals);
  ASSERT_EQ(locals.rows.size(), prog.num_locals);
  ASSERT_EQ(locals.present.size(), prog.num_locals);

  proc::ExecArena arena;
  const std::vector<Value> params = {Value(int64_t{0}), Value(5.0)};
  proc::VmState st = arena.BindShared(prog, &params, &locals);
  EXPECT_EQ(st.locals, locals.rows.data());
  EXPECT_EQ(st.present, locals.present.data());

  proc::ReplayAccess access(db->catalog(), proc::InstallMode::kUnlatched);
  access.set_commit_ts(1);
  ASSERT_TRUE(proc::VmExecuteAll(&st, &access).ok());
  bool any_present = false;
  for (uint16_t l = 0; l < prog.num_locals; ++l) {
    any_present = any_present || locals.present[l] != 0;
  }
  EXPECT_TRUE(any_present);
  locals.Reset(prog.num_locals);
  for (uint16_t l = 0; l < prog.num_locals; ++l) {
    EXPECT_EQ(locals.present[l], 0);
  }
}

// The compiled program records the procedure's static footprint for the
// commit-path fast paths and the disassembler round-trips the stream.
TEST(CompiledProgramTest, SummaryAndDisassembly) {
  workload::Bank bank{workload::BankConfig{
      .num_users = 20, .num_nations = 2, .single_fraction = 0.0}};
  auto db = MakeBankDb(true, LogScheme::kCommand, &bank);
  const proc::CompiledProgram& prog =
      db->programs().Get(bank.transfer_id());

  EXPECT_FALSE(prog.code.empty());
  EXPECT_GT(prog.num_regs, 0);
  // Transfer: reads Family, Current x2, Saving; updates Current x2,
  // Saving.
  EXPECT_EQ(prog.summary.num_reads, 4u);
  EXPECT_EQ(prog.summary.num_writes, 3u);
  EXPECT_TRUE(prog.summary.writes_may_alias);  // Current written twice.
  ASSERT_EQ(prog.summary.canonical_write_order.size(), 3u);
  const auto& defs = prog.def->ops;
  for (size_t i = 1; i < prog.summary.canonical_write_order.size(); ++i) {
    EXPECT_LE(defs[prog.summary.canonical_write_order[i - 1]].table_id,
              defs[prog.summary.canonical_write_order[i]].table_id);
  }

  const std::string dis = proc::DisassembleProgram(prog);
  EXPECT_NE(dis.find("read_row"), std::string::npos);
  EXPECT_NE(dis.find("write_row"), std::string::npos);
  EXPECT_NE(dis.find("jump_if_false"), std::string::npos);
}

// Executing a compiled-procedures database whose schema was never
// finalized must trip the check rather than run uncompiled.
TEST(BytecodeDeathTest, ExecuteWithoutFinalizeDies) {
  DatabaseOptions opts;
  opts.scheme = LogScheme::kCommand;
  opts.compiled_procedures = true;
  Database db(opts);
  workload::Bank bank{workload::BankConfig{
      .num_users = 10, .num_nations = 2, .single_fraction = 0.0}};
  bank.CreateTables(db.catalog());
  bank.RegisterProcedures(db.registry());
  bank.Load(db.catalog());
  // No FinalizeSchema(): no compiled programs exist.
  const std::vector<Value> params = {Value(int64_t{0}), Value(5.0)};
  EXPECT_DEATH(db.ExecuteProcedure(bank.transfer_id(), params),
               "compiled_procedures requires FinalizeSchema");
}

}  // namespace
}  // namespace pacman
