// Tests for the discrete-event multicore machine.
#include "sim/machine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "sim/task_graph.h"

namespace pacman::sim {
namespace {

TEST(TaskGraphTest, TotalCost) {
  TaskGraph g;
  g.AddTask(1.0, nullptr);
  g.AddTask(2.5, nullptr);
  EXPECT_DOUBLE_EQ(g.TotalCost(), 3.5);
}

TEST(MachineTest, SerialChainTakesSumOfCosts) {
  TaskGraph g;
  TaskId a = g.AddTask(1.0, nullptr);
  TaskId b = g.AddTask(2.0, nullptr);
  TaskId c = g.AddTask(3.0, nullptr);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  Machine m(MachineConfig::Uniform(4));
  EXPECT_DOUBLE_EQ(m.Run(g).makespan, 6.0);
}

TEST(MachineTest, IndependentTasksRunInParallel) {
  TaskGraph g;
  for (int i = 0; i < 8; ++i) g.AddTask(1.0, nullptr);
  Machine m4(MachineConfig::Uniform(4));
  EXPECT_DOUBLE_EQ(m4.Run(g).makespan, 2.0);

  TaskGraph g2;
  for (int i = 0; i < 8; ++i) g2.AddTask(1.0, nullptr);
  Machine m1(MachineConfig::Uniform(1));
  EXPECT_DOUBLE_EQ(m1.Run(g2).makespan, 8.0);
}

TEST(MachineTest, WorkRunsExactlyOnceInDependencyOrder) {
  TaskGraph g;
  std::vector<int> order;
  TaskId a = g.AddTask(1.0, [&]() { order.push_back(1); });
  TaskId b = g.AddTask(1.0, [&]() { order.push_back(2); });
  TaskId c = g.AddTask(1.0, [&]() { order.push_back(3); });
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  Machine m(MachineConfig::Uniform(1));
  m.Run(g);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  // b before c: same priority, lower task id wins deterministically.
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(MachineTest, PriorityBreaksTies) {
  TaskGraph g;
  std::vector<int> order;
  g.AddTask(1.0, [&]() { order.push_back(1); }, 0, /*priority=*/5);
  g.AddTask(1.0, [&]() { order.push_back(2); }, 0, /*priority=*/1);
  Machine m(MachineConfig::Uniform(1));
  m.Run(g);
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(MachineTest, GroupsAreIsolatedResources) {
  // Group 0 has 1 core, group 1 has 2 cores. Three unit tasks per group.
  TaskGraph g;
  for (int i = 0; i < 3; ++i) g.AddTask(1.0, nullptr, 0);
  for (int i = 0; i < 3; ++i) g.AddTask(1.0, nullptr, 1);
  Machine m(MachineConfig{{1, 2}});
  RunStats stats = m.Run(g);
  EXPECT_DOUBLE_EQ(stats.makespan, 3.0);  // Group 0 is the bottleneck.
  EXPECT_DOUBLE_EQ(stats.groups[0].busy_time, 3.0);
  EXPECT_DOUBLE_EQ(stats.groups[1].busy_time, 3.0);
  EXPECT_EQ(stats.groups[0].tasks_run, 3u);
}

TEST(MachineTest, DynamicWorkOverridesCost) {
  TaskGraph g;
  TaskId a = g.AddTask(99.0, nullptr);
  g.task(a).dynamic_work = []() { return 2.0; };
  TaskId b = g.AddTask(1.0, nullptr);
  g.AddEdge(a, b);
  Machine m(MachineConfig::Uniform(1));
  EXPECT_DOUBLE_EQ(m.Run(g).makespan, 3.0);
}

TEST(MachineTest, DiamondDependency) {
  // a -> {b, c} -> d on 2 cores: 1 + 2 + 1.
  TaskGraph g;
  TaskId a = g.AddTask(1.0, nullptr);
  TaskId b = g.AddTask(2.0, nullptr);
  TaskId c = g.AddTask(2.0, nullptr);
  TaskId d = g.AddTask(1.0, nullptr);
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  Machine m(MachineConfig::Uniform(2));
  EXPECT_DOUBLE_EQ(m.Run(g).makespan, 4.0);
}

// Property sweep: on random DAGs the makespan must lie between the
// theoretical bounds, collapse to the serial sum on one core, and execute
// every side effect exactly once in dependency order.
class MachinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MachinePropertyTest, MakespanBoundsOnRandomDags) {
  pacman::Rng rng(GetParam());
  const int n = 120;
  TaskGraph g;
  std::vector<double> costs(n);
  std::vector<std::vector<TaskId>> deps(n);
  std::vector<int> ran(n, 0);
  std::vector<double> finish_bound(n, 0.0);
  for (int i = 0; i < n; ++i) {
    costs[i] = 0.5 + rng.UniformDouble();
    int ndeps = static_cast<int>(rng.Uniform(0, 2));
    for (int k = 0; k < ndeps && i > 0; ++k) {
      deps[i].push_back(static_cast<TaskId>(rng.Uniform(0, i - 1)));
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<TaskId> my_deps = deps[i];
    TaskId t = g.AddTask(costs[i], [&ran, my_deps, &g, i]() {
      ran[i]++;
      for (TaskId d : my_deps) EXPECT_EQ(ran[d], 1);
    });
    for (TaskId d : deps[i]) g.AddEdge(d, t);
  }
  // Critical path (longest cost chain) lower bound.
  for (int i = 0; i < n; ++i) {
    double start = 0.0;
    for (TaskId d : deps[i]) start = std::max(start, finish_bound[d]);
    finish_bound[i] = start + costs[i];
  }
  double critical_path = 0.0, total = 0.0;
  for (int i = 0; i < n; ++i) {
    critical_path = std::max(critical_path, finish_bound[i]);
    total += costs[i];
  }

  const uint32_t cores = 1 + static_cast<uint32_t>(GetParam() % 7);
  Machine m(MachineConfig::Uniform(cores));
  double makespan = m.Run(g).makespan;
  EXPECT_GE(makespan, critical_path - 1e-9);
  EXPECT_GE(makespan, total / cores - 1e-9);
  EXPECT_LE(makespan, total + 1e-9);
  if (cores == 1) {
    EXPECT_NEAR(makespan, total, 1e-9);
  }
  for (int i = 0; i < n; ++i) EXPECT_EQ(ran[i], 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachinePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 14, 21));

TEST(MachineTest, PipelineOverlapsStages) {
  // Two-stage pipeline over 4 items, stages on different groups: the
  // classic overlap: makespan = s1 + 4 * s2 when s2 >= s1.
  TaskGraph g;
  TaskId prev_s2 = kInvalidTask;
  for (int i = 0; i < 4; ++i) {
    TaskId s1 = g.AddTask(1.0, nullptr, 0, i);
    TaskId s2 = g.AddTask(2.0, nullptr, 1, i);
    g.AddEdge(s1, s2);
    if (prev_s2 != kInvalidTask) g.AddEdge(prev_s2, s2);
    prev_s2 = s2;
  }
  Machine m(MachineConfig{{1, 1}});
  EXPECT_DOUBLE_EQ(m.Run(g).makespan, 1.0 + 4 * 2.0);
}

}  // namespace
}  // namespace pacman::sim
