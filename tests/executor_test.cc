// Tests for the real-thread task-graph executor (the library's recovery
// backend) — dependency order, exactly-once execution, priority dispatch.
#include "recovery/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/random.h"
#include "sim/task_graph.h"

namespace pacman::recovery {
namespace {

TEST(ExecutorTest, RunsEveryTaskExactlyOnce) {
  sim::TaskGraph g;
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    g.AddTask(0.0, [&]() { count.fetch_add(1); });
  }
  RunOnThreads(&g, 4);
  EXPECT_EQ(count.load(), 500);
}

TEST(ExecutorTest, RespectsDependencyOrder) {
  sim::TaskGraph g;
  std::atomic<int> stage{0};
  sim::TaskId a = g.AddTask(0.0, [&]() {
    int expected = 0;
    EXPECT_TRUE(stage.compare_exchange_strong(expected, 1));
  });
  sim::TaskId b = g.AddTask(0.0, [&]() {
    int expected = 1;
    EXPECT_TRUE(stage.compare_exchange_strong(expected, 2));
  });
  sim::TaskId c = g.AddTask(0.0, [&]() {
    int expected = 2;
    EXPECT_TRUE(stage.compare_exchange_strong(expected, 3));
  });
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  RunOnThreads(&g, 8);
  EXPECT_EQ(stage.load(), 3);
}

TEST(ExecutorTest, RandomDagsCompleteInTopologicalOrder) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    sim::TaskGraph g;
    const int n = 200;
    std::vector<std::atomic<bool>> done(n);
    for (auto& d : done) d.store(false);
    std::vector<std::vector<sim::TaskId>> deps(n);
    for (int i = 0; i < n; ++i) {
      // Random backward edges keep the graph acyclic.
      int ndeps = static_cast<int>(rng.Uniform(0, 3));
      for (int k = 0; k < ndeps && i > 0; ++k) {
        deps[i].push_back(static_cast<sim::TaskId>(rng.Uniform(0, i - 1)));
      }
    }
    for (int i = 0; i < n; ++i) {
      std::vector<sim::TaskId> my_deps = deps[i];
      sim::TaskId t = g.AddTask(0.0, [&done, my_deps, i]() {
        for (sim::TaskId d : my_deps) {
          EXPECT_TRUE(done[d].load()) << "dep ran after dependent";
        }
        done[i].store(true);
      });
      for (sim::TaskId d : deps[i]) g.AddEdge(d, t);
      ASSERT_EQ(t, static_cast<sim::TaskId>(i));
    }
    RunOnThreads(&g, 1 + trial % 4);
    for (auto& d : done) EXPECT_TRUE(d.load());
  }
}

TEST(ExecutorTest, DynamicWorkIsInvoked) {
  sim::TaskGraph g;
  std::atomic<int> calls{0};
  sim::TaskId a = g.AddTask(5.0, nullptr);
  g.task(a).dynamic_work = [&]() {
    calls.fetch_add(1);
    return 1.0;
  };
  RunOnThreads(&g, 2);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ExecutorTest, SingleThreadFollowsPriorityOrder) {
  sim::TaskGraph g;
  std::vector<int> order;
  g.AddTask(0.0, [&]() { order.push_back(0); }, 0, /*priority=*/9);
  g.AddTask(0.0, [&]() { order.push_back(1); }, 0, /*priority=*/1);
  g.AddTask(0.0, [&]() { order.push_back(2); }, 0, /*priority=*/5);
  RunOnThreads(&g, 1);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

}  // namespace
}  // namespace pacman::recovery
