// Tests for the shared execution layer: thread pool semantics, worker-id
// tagging, quiescence, and task-graph execution on a reused pool.
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "exec/task_graph_runner.h"
#include "exec/worker_context.h"
#include "sim/task_graph.h"

namespace pacman::exec {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WorkersCarryDenseIds) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<WorkerId> seen;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      WorkerId id = CurrentWorkerId();
      std::lock_guard<std::mutex> g(mu);
      seen.insert(id);
    });
  }
  pool.WaitIdle();
  EXPECT_GE(seen.size(), 1u);
  for (WorkerId id : seen) EXPECT_LT(id, 4u);
  // Off-pool threads are untagged.
  EXPECT_EQ(CurrentWorkerId(), kInvalidWorkerId);
}

TEST(ThreadPoolTest, WorkerScopeNestsAndRestores) {
  EXPECT_EQ(CurrentWorkerId(), kInvalidWorkerId);
  {
    WorkerScope outer(3);
    EXPECT_EQ(CurrentWorkerId(), 3u);
    {
      WorkerScope inner(7);
      EXPECT_EQ(CurrentWorkerId(), 7u);
    }
    EXPECT_EQ(CurrentWorkerId(), 3u);
  }
  EXPECT_EQ(CurrentWorkerId(), kInvalidWorkerId);
}

TEST(ThreadPoolTest, JobsMaySubmitJobs) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

TEST(TaskGraphRunnerTest, PoolIsReusableAcrossGraphs) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    sim::TaskGraph g;
    std::atomic<int> count{0};
    sim::TaskId prev = g.AddTask(0.0, [&] { count.fetch_add(1); });
    for (int i = 1; i < 50; ++i) {
      sim::TaskId t = g.AddTask(0.0, [&] { count.fetch_add(1); });
      if (i % 2 == 0) g.AddEdge(prev, t);
      prev = t;
    }
    double seconds = RunTaskGraph(&g, &pool);
    EXPECT_GE(seconds, 0.0);
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(TaskGraphRunnerTest, EmptyGraphCompletes) {
  sim::TaskGraph g;
  EXPECT_GE(RunTaskGraph(&g, 2), 0.0);
}

TEST(TaskGraphRunnerTest, GraphTasksRunOnTaggedWorkers) {
  ThreadPool pool(3);
  sim::TaskGraph g;
  std::atomic<int> bad{0};
  for (int i = 0; i < 100; ++i) {
    g.AddTask(0.0, [&] {
      WorkerId id = CurrentWorkerId();
      if (id >= 3) bad.fetch_add(1);
    });
  }
  RunTaskGraph(&g, &pool);
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace pacman::exec
