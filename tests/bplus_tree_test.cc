// Tests for the latch-crabbing B+tree, including property-style sweeps and
// a multi-threaded smoke test.
#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"

namespace pacman::storage {
namespace {

void* Ptr(uint64_t v) { return reinterpret_cast<void*>(v); }

TEST(BPlusTreeTest, EmptyLookup) {
  BPlusTree tree;
  EXPECT_EQ(tree.Lookup(1), nullptr);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(5, Ptr(50)));
  EXPECT_TRUE(tree.Insert(3, Ptr(30)));
  EXPECT_FALSE(tree.Insert(5, Ptr(99)));  // Duplicate rejected.
  EXPECT_EQ(tree.Lookup(5), Ptr(50));     // Original value kept.
  EXPECT_EQ(tree.Lookup(3), Ptr(30));
  EXPECT_EQ(tree.Lookup(4), nullptr);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BPlusTreeTest, UpsertOverwrites) {
  BPlusTree tree;
  EXPECT_EQ(tree.Upsert(7, Ptr(1)), nullptr);
  EXPECT_EQ(tree.Upsert(7, Ptr(2)), Ptr(1));
  EXPECT_EQ(tree.Lookup(7), Ptr(2));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, SplitsPreserveAllKeysAscending) {
  BPlusTree tree;
  const uint64_t n = 10000;
  for (uint64_t k = 0; k < n; ++k) ASSERT_TRUE(tree.Insert(k, Ptr(k + 1)));
  EXPECT_EQ(tree.size(), n);
  EXPECT_GT(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < n; ++k) ASSERT_EQ(tree.Lookup(k), Ptr(k + 1));
}

TEST(BPlusTreeTest, SplitsPreserveAllKeysDescending) {
  BPlusTree tree;
  const uint64_t n = 10000;
  for (uint64_t k = n; k > 0; --k) ASSERT_TRUE(tree.Insert(k, Ptr(k)));
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 1; k <= n; ++k) ASSERT_EQ(tree.Lookup(k), Ptr(k));
}

TEST(BPlusTreeTest, ScanFromVisitsInOrder) {
  BPlusTree tree;
  for (uint64_t k = 0; k < 1000; k += 2) tree.Insert(k, Ptr(k + 1));
  std::vector<Key> seen;
  tree.ScanFrom(101, [&](Key k, void*) {
    seen.push_back(k);
    return seen.size() < 5;
  });
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), 102u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(BPlusTreeTest, ScanWholeTree) {
  BPlusTree tree;
  Rng rng(5);
  std::map<Key, void*> model;
  for (int i = 0; i < 5000; ++i) {
    Key k = rng.Uniform(0, 1u << 20);
    if (model.emplace(k, Ptr(k + 7)).second) tree.Insert(k, Ptr(k + 7));
  }
  std::vector<Key> seen;
  tree.ScanFrom(0, [&](Key k, void*) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), model.size());
  auto it = model.begin();
  for (Key k : seen) EXPECT_EQ(k, (it++)->first);
}

// Property sweep: random interleavings of insert/upsert vs a std::map
// model, across several seeds.
class BPlusTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreePropertyTest, MatchesModel) {
  Rng rng(GetParam());
  BPlusTree tree;
  std::map<Key, void*> model;
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.Uniform(0, 4000);  // Dense: many duplicates.
    if (rng.Bernoulli(0.5)) {
      bool inserted = tree.Insert(k, Ptr(i + 1));
      EXPECT_EQ(inserted, model.emplace(k, Ptr(i + 1)).second);
    } else {
      void* prev = tree.Upsert(k, Ptr(i + 1));
      auto it = model.find(k);
      EXPECT_EQ(prev, it == model.end() ? nullptr : it->second);
      model[k] = Ptr(i + 1);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (const auto& [k, v] : model) EXPECT_EQ(tree.Lookup(k), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 123, 31337));

TEST(BPlusTreeConcurrencyTest, ParallelDisjointInserts) {
  BPlusTree tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        Key k = static_cast<Key>(t) * kPerThread + i;
        ASSERT_TRUE(tree.Insert(k, Ptr(k + 1)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.size(), kThreads * kPerThread);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_EQ(tree.Lookup(k), Ptr(k + 1));
  }
}

TEST(BPlusTreeConcurrencyTest, ReadersDuringWrites) {
  BPlusTree tree;
  for (uint64_t k = 0; k < 10000; k += 2) tree.Insert(k, Ptr(k + 1));
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    Rng rng(1);
    while (!stop.load()) {
      Key k = rng.Uniform(0, 9999) & ~1ull;
      void* v = tree.Lookup(k);
      ASSERT_EQ(v, Ptr(k + 1));
    }
  });
  for (uint64_t k = 1; k < 10000; k += 2) tree.Insert(k, Ptr(k + 1));
  stop.store(true);
  reader.join();
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 10000u);
}

}  // namespace
}  // namespace pacman::storage
