// Stress tests for concurrent forward processing: 4+ workers driving the
// bank / smallbank workloads through OCC retry, per-worker command
// logging and group commit, then crash + CLR-P recovery. Verifies the
// ContentHash() invariant (recovered state == pre-crash state) and
// balance-sum conservation under a transfers-only mix.
#include <gtest/gtest.h>

#include <vector>

#include "pacman/database.h"
#include "storage/table.h"
#include "test_util.h"
#include "workload/bank.h"
#include "workload/smallbank.h"

namespace pacman {
namespace {

class ConcurrentEngineTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> MakeBankDb(uint32_t commits_per_epoch = 100) {
    DatabaseOptions opts;
    opts.scheme = logging::LogScheme::kCommand;
    opts.commits_per_epoch = commits_per_epoch;
    opts.epochs_per_batch = 2;
    auto db = std::make_unique<Database>(opts);
    bank_.CreateTables(db->catalog());
    bank_.RegisterProcedures(db->registry());
    bank_.Load(db->catalog());
    db->FinalizeSchema();
    return db;
  }

  TxnGenerator BankMix() {
    return [this](Rng* rng, std::vector<Value>* params) {
      return bank_.NextTransaction(rng, params);
    };
  }

  // Transfers only: conserves the sum over Current (every user has a
  // spouse with single_fraction = 0, so no transfer falls into the
  // no-op branch).
  TxnGenerator TransfersOnly() {
    return [this](Rng* rng, std::vector<Value>* params) {
      params->clear();
      params->push_back(
          Value(rng->UniformInt(0, bank_.config().num_users - 1)));
      params->push_back(Value(static_cast<double>(rng->UniformInt(1, 100))));
      return bank_.transfer_id();
    };
  }

  workload::Bank bank_{workload::BankConfig{
      .num_users = 1000, .num_nations = 8, .single_fraction = 0.0}};
};

TEST_F(ConcurrentEngineTest, FourWorkersCommitEverythingOnce) {
  auto db = MakeBankDb();
  db->TakeCheckpoint();
  DriverOptions opts;
  opts.num_workers = 4;
  opts.num_txns = 4000;
  DriverResult r = db->RunWorkers(BankMix(), opts);

  EXPECT_EQ(r.workers.size(), 4u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.committed, 4000u);
  EXPECT_EQ(db->commits(), 4000u);
  // Per-worker stats add up to the aggregate (the shared submission queue
  // load-balances the per-executor split, so no fixed 1/N share).
  uint64_t sum = 0;
  for (const WorkerStats& w : r.workers) sum += w.committed;
  EXPECT_EQ(sum, r.committed);
  // Per-worker log staging was actually engaged (executor slots).
  EXPECT_GE(db->log_manager()->num_worker_buffers(), 4u);
  // The driver tears its executor pool down when done.
  EXPECT_FALSE(db->workers_running());
}

TEST_F(ConcurrentEngineTest, TransfersConserveBalanceSum) {
  auto db = MakeBankDb();
  const storage::Table* current = db->catalog()->GetTable("Current");
  const double before =
      testutil::VisibleSum(current, db->txn_manager()->LastCommitted());

  db->TakeCheckpoint();
  DriverOptions opts;
  opts.num_workers = 4;
  opts.num_txns = 3000;
  DriverResult r = db->RunWorkers(TransfersOnly(), opts);
  ASSERT_EQ(r.failed, 0u);

  const double after =
      testutil::VisibleSum(current, db->txn_manager()->LastCommitted());
  EXPECT_NEAR(before, after, 1e-6);
}

TEST_F(ConcurrentEngineTest, CrashRecoveryReproducesConcurrentState) {
  auto db = MakeBankDb(/*commits_per_epoch=*/50);
  db->TakeCheckpoint();
  DriverOptions opts;
  opts.num_workers = 4;
  opts.num_txns = 3000;
  DriverResult r = db->RunWorkers(TransfersOnly(), opts);
  ASSERT_EQ(r.failed, 0u);

  const storage::Table* current = db->catalog()->GetTable("Current");
  const double sum_before =
      testutil::VisibleSum(current, db->txn_manager()->LastCommitted());
  const uint64_t hash = db->ContentHash();

  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClrP, ropts);

  EXPECT_EQ(db->ContentHash(), hash);
  EXPECT_NEAR(testutil::VisibleSum(current, db->txn_manager()->LastCommitted()),
              sum_before, 1e-6);
}

TEST_F(ConcurrentEngineTest, RecoveryOnRealThreadsMatchesToo) {
  auto db = MakeBankDb();
  db->TakeCheckpoint();
  DriverOptions opts;
  opts.num_workers = 4;
  opts.num_txns = 2000;
  ASSERT_EQ(db->RunWorkers(BankMix(), opts).failed, 0u);
  const uint64_t hash = db->ContentHash();

  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClrP, ropts, ExecutionBackend::kThreads);
  EXPECT_EQ(db->ContentHash(), hash);
}

TEST_F(ConcurrentEngineTest, RepeatedConcurrentRunAndRecoveryCycles) {
  auto db = MakeBankDb();
  db->TakeCheckpoint();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  for (int cycle = 0; cycle < 3; ++cycle) {
    DriverOptions opts;
    opts.num_workers = 4;
    opts.num_txns = 1000;
    opts.seed = 42 + static_cast<uint64_t>(cycle);
    ASSERT_EQ(db->RunWorkers(BankMix(), opts).failed, 0u);
    const uint64_t hash = db->ContentHash();
    db->Crash();
    db->Recover(recovery::Scheme::kClrP, ropts);
    ASSERT_EQ(db->ContentHash(), hash) << "cycle " << cycle;
  }
}

TEST_F(ConcurrentEngineTest, SingleWorkerMatchesSerialExecution) {
  auto db1 = MakeBankDb();
  auto db2 = MakeBankDb();

  // db1: historical serial loop.
  db1->TakeCheckpoint();
  Rng rng(123);
  std::vector<Value> params;
  for (int i = 0; i < 500; ++i) {
    ProcId proc = bank_.NextTransaction(&rng, &params);
    ASSERT_TRUE(db1->ExecuteProcedure(proc, params).ok());
  }

  // db2: the driver with one worker and the same seed.
  db2->TakeCheckpoint();
  DriverOptions opts;
  opts.num_workers = 1;
  opts.num_txns = 500;
  opts.seed = 123;
  ASSERT_EQ(db2->RunWorkers(BankMix(), opts).failed, 0u);

  EXPECT_EQ(db1->ContentHash(), db2->ContentHash());
}

TEST_F(ConcurrentEngineTest, AdhocFractionSurvivesConcurrentRecovery) {
  auto db = MakeBankDb();
  db->TakeCheckpoint();
  DriverOptions opts;
  opts.num_workers = 4;
  opts.num_txns = 2000;
  opts.adhoc_fraction = 0.3;
  ASSERT_EQ(db->RunWorkers(BankMix(), opts).failed, 0u);
  const uint64_t hash = db->ContentHash();

  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db->Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(db->ContentHash(), hash);
}

TEST_F(ConcurrentEngineTest, EightWorkerHotKeyStressConservesAndRecovers) {
  // High-contention configuration: 8 executor workers funneling transfers
  // into a 32-user hot set, through the full stack (sessions, parallel
  // commit, per-worker log staging, group commit). Conservation plus
  // recovered-hash equality is the end-to-end check that the slot-locked
  // commit path and its abort-time lock release stay correct under real
  // conflict pressure.
  auto db = MakeBankDb(/*commits_per_epoch=*/50);
  const storage::Table* current = db->catalog()->GetTable("Current");
  const double before =
      testutil::VisibleSum(current, db->txn_manager()->LastCommitted());
  db->TakeCheckpoint();

  DriverOptions opts;
  opts.num_workers = 8;
  opts.num_txns = 4000;
  DriverResult r = db->RunWorkers(
      [this](Rng* rng, std::vector<Value>* params) {
        params->clear();
        params->push_back(Value(rng->UniformInt(0, 31)));  // Hot range.
        params->push_back(
            Value(static_cast<double>(rng->UniformInt(1, 100))));
        return bank_.transfer_id();
      },
      opts);
  ASSERT_EQ(r.failed, 0u);
  ASSERT_EQ(r.committed, 4000u);

  const double after =
      testutil::VisibleSum(current, db->txn_manager()->LastCommitted());
  EXPECT_NEAR(before, after, 1e-6);

  const uint64_t hash = db->ContentHash();
  db->Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 8;
  db->Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(db->ContentHash(), hash);
  EXPECT_NEAR(testutil::VisibleSum(current, db->txn_manager()->LastCommitted()),
              before, 1e-6);
}

TEST(ConcurrentSmallbankTest, StressRecoversExactState) {
  DatabaseOptions dopts;
  dopts.scheme = logging::LogScheme::kCommand;
  dopts.commits_per_epoch = 100;
  dopts.epochs_per_batch = 2;
  Database db(dopts);
  workload::Smallbank sb(workload::SmallbankConfig{
      .num_accounts = 2000, .hotspot_fraction = 0.2, .hotspot_size = 50});
  sb.CreateTables(db.catalog());
  sb.RegisterProcedures(db.registry());
  sb.Load(db.catalog());
  db.FinalizeSchema();
  db.TakeCheckpoint();

  DriverOptions opts;
  opts.num_workers = 4;
  opts.num_txns = 3000;
  DriverResult r = db.RunWorkers(
      [&sb](Rng* rng, std::vector<Value>* params) {
        return sb.NextTransaction(rng, params);
      },
      opts);
  ASSERT_EQ(r.failed, 0u);
  ASSERT_EQ(r.committed, 3000u);
  const uint64_t hash = db.ContentHash();

  db.Crash();
  recovery::RecoveryOptions ropts;
  ropts.num_threads = 4;
  db.Recover(recovery::Scheme::kClrP, ropts);
  EXPECT_EQ(db.ContentHash(), hash);
}

}  // namespace
}  // namespace pacman
